"""The shipped invariant checkers (24 of the 25 checkers, over 13 of the
14 checkpoints; the ``trainer.dag`` analytic-oracle checker lives in
:mod:`repro.checks.dag`).

Each checker guards one physically meaningful property of the simulation —
the quantities the paper's figures are built from.  The catalog, the
payload contract of every checkpoint, and instructions for adding a new
checker live in docs/INVARIANTS.md.

Checkpoints and the checkers attached to them (here):

====================  ====================================================
checkpoint            checkers
====================  ====================================================
``sim.event``         temporal.event-monotone
``fabric.dma``        capacity.link-bandwidth, temporal.link-serialization
``fabric.totals``     capacity.link-busy, conservation.link-accounting
``comm.ring``         structural.ring-permutation, structural.ring-links
``comm.tree``         structural.tree-spanning
``comm.p2p.plan``     structural.reduce-coverage
``comm.collective``   conservation.collective-wire,
                      capacity.collective-bandwidth
``comm.hierarchical`` conservation.hierarchical-wire,
                      capacity.hierarchical-floor,
                      temporal.hierarchical-agreement,
                      conservation.rail-rebalance,
                      capacity.degraded-rail-floor
``trainer.fastpath``  temporal.fallback-agreement
``trainer.stages``    temporal.spans-nested, temporal.iterations-monotone,
                      temporal.step-accounting, capacity.gpu-busy
``trainer.traffic``   conservation.gradient-traffic
``trainer.epoch``     conservation.epoch-accounting
``trainer.memory``    capacity.memory-budget
====================  ====================================================

All tolerances are relative ``1e-9`` with a tiny absolute floor — loose
enough for float accumulation over thousands of events, tight enough that
any real modeling regression (a 2x bandwidth bug, a lost chunk) fires.
"""

from __future__ import annotations

from typing import Any, Iterator, Mapping

from repro.checks.registry import invariant

#: Relative tolerance for floating-point comparisons.
REL_TOL = 1e-9
#: Absolute tolerance floor (guards comparisons around zero).
ABS_TOL = 1e-12

Payload = Mapping[str, Any]


def _lt(a: float, b: float) -> bool:
    """True when ``a`` is less than ``b`` beyond float tolerance."""
    return a < b - (REL_TOL * max(abs(a), abs(b)) + ABS_TOL)


def _ne(a: float, b: float) -> bool:
    """True when ``a`` differs from ``b`` beyond float tolerance."""
    return _lt(a, b) or _lt(b, a)


# ----------------------------------------------------------------------
# sim.event — fired by Environment.step() for every popped event
# ----------------------------------------------------------------------
@invariant("sim.event", name="event-monotone", category="temporal",
           description="sim-event timestamps never run backwards")
def check_event_monotone(p: Payload):
    """The popped event's timestamp must not precede the engine clock."""
    if _lt(p["when"], p["now"]):
        return (f"event scheduled at t={p['when']!r} while the clock "
                f"already reached t={p['now']!r}")


# ----------------------------------------------------------------------
# fabric.dma — fired by Fabric.dma() as each DMA releases its links
# ----------------------------------------------------------------------
@invariant("fabric.dma", name="link-bandwidth", category="capacity",
           description="achieved DMA bandwidth never exceeds link capacity")
def check_link_bandwidth(p: Payload):
    """``wire_time`` must cover latency plus ``nbytes`` at rated bandwidth."""
    minimum = p["latency"] + p["nbytes"] / p["bandwidth"]
    if _lt(p["wire_time"], minimum):
        achieved = p["nbytes"] / max(p["wire_time"] - p["latency"], ABS_TOL)
        return (f"{p['nbytes']} bytes crossed in {p['wire_time']:.3e}s "
                f"(>= {minimum:.3e}s required): achieved {achieved:.3e} B/s "
                f"exceeds link capacity {p['bandwidth']:.3e} B/s")


@invariant("fabric.dma", name="link-serialization", category="temporal",
           description="DMAs on one directed link are granted FIFO, never overlapping")
def check_link_serialization(p: Payload):
    """Each link grant must start at or after the previous DMA's release."""
    for key, prev_end in p["windows"]:
        if _lt(p["granted"], prev_end):
            yield (f"link {key}: DMA granted at t={p['granted']!r} overlaps "
                   f"the previous DMA still busy until t={prev_end!r}")


# ----------------------------------------------------------------------
# fabric.totals — fired by the trainer after each measured segment
# ----------------------------------------------------------------------
@invariant("fabric.totals", name="link-busy", category="capacity",
           description="per-link busy time never exceeds wall time (duplex)")
def check_link_busy(p: Payload):
    """Accumulated busy time per link name (two directions share one
    accumulator) is bounded by twice the elapsed simulated time."""
    ceiling = 2.0 * p["elapsed"]
    for link, busy in p["busy_time"].items():
        if _lt(ceiling, busy):
            yield (f"link {link}: busy {busy:.6e}s exceeds 2 x elapsed "
                   f"{p['elapsed']:.6e}s (duplex wall-time ceiling)")


@invariant("fabric.totals", name="link-accounting", category="conservation",
           description="link byte/busy/wait accumulators are consistent")
def check_link_accounting(p: Payload):
    """Bytes are non-negative integers; moved bytes imply busy time; wait
    and busy times are non-negative."""
    for link, nbytes in p["bytes_moved"].items():
        if not isinstance(nbytes, int) or nbytes < 0:
            yield f"link {link}: bytes_moved {nbytes!r} is not a non-negative int"
        elif nbytes > 0 and p["busy_time"].get(link, 0.0) <= 0.0:
            yield (f"link {link}: moved {nbytes} bytes but accumulated "
                   "zero busy time")
    for link, wait in p["wait_time"].items():
        if wait < -ABS_TOL:
            yield f"link {link}: negative wait time {wait!r}"
    for link, busy in p["busy_time"].items():
        if busy < -ABS_TOL:
            yield f"link {link}: negative busy time {busy!r}"


# ----------------------------------------------------------------------
# comm.ring — fired at NCCL communicator construction (and re-ring)
# ----------------------------------------------------------------------
@invariant("comm.ring", name="ring-permutation", category="structural",
           description="the NCCL ring order is a permutation of the participants")
def check_ring_permutation(p: Payload):
    """Every participant appears exactly once in the ring order."""
    order, participants = list(p["order"]), list(p["participants"])
    if len(set(order)) != len(order):
        return f"ring order {order} repeats a GPU"
    if sorted(order) != sorted(participants):
        return (f"ring order {sorted(order)} is not a permutation of "
                f"participants {sorted(participants)}")


@invariant("comm.ring", name="ring-links", category="structural",
           description="ring hops follow the ring order and match the PCIe-fallback flag")
def check_ring_links(p: Payload):
    """Hop ``i`` must connect ``order[i] -> order[i+1 mod n]``, and any hop
    over PCIe must be reflected in the plan's ``uses_pcie`` flag."""
    order = list(p["order"])
    hops = list(p["hops"])
    n = len(order)
    if n >= 2 and len(hops) != n:
        yield f"ring of {n} GPUs has {len(hops)} hops (expected {n})"
        return
    for i, (src, dst, _link, link_type) in enumerate(hops):
        if src != order[i] or dst != order[(i + 1) % n]:
            yield (f"hop {i} connects gpu{src}->gpu{dst} but the ring order "
                   f"requires gpu{order[i]}->gpu{order[(i + 1) % n]}")
        if link_type == "pcie" and not p["uses_pcie"]:
            yield (f"hop gpu{src}->gpu{dst} crosses PCIe but the plan claims "
                   "uses_pcie=False")


# ----------------------------------------------------------------------
# comm.tree — fired when a (non-compat) NCCL tree plan is built
# ----------------------------------------------------------------------
@invariant("comm.tree", name="tree-spanning", category="structural",
           description="the NCCL tree is a spanning tree rooted at the root")
def check_tree_spanning(p: Payload):
    """The parent map must span every participant exactly once, be acyclic,
    drain to the declared root, and agree with the declared depth."""
    root = p["root"]
    parent = dict()
    participants = set(p["participants"])
    for child, par in p["parent"]:
        if child in parent:
            yield f"gpu{child} has two parents (gpu{parent[child]}, gpu{par})"
        parent[child] = par
    if root in parent:
        yield f"root gpu{root} has a parent (gpu{parent[root]})"
    covered = set(parent) | {root}
    if covered != participants:
        missing = sorted(participants - covered)
        extra = sorted(covered - participants)
        yield (f"tree covers {sorted(covered)} but participants are "
               f"{sorted(participants)} (missing {missing}, extra {extra})")
        return
    max_depth = 0
    for node in participants:
        steps, cur = 0, node
        while cur != root:
            if cur not in parent or steps > len(participants):
                yield f"gpu{node} does not drain to root gpu{root} (cycle or gap)"
                return
            cur = parent[cur]
            steps += 1
        max_depth = max(max_depth, steps)
    if max_depth != p["depth"]:
        yield f"tree depth is {max_depth} but the plan declares {p['depth']}"


# ----------------------------------------------------------------------
# comm.p2p.plan — fired at P2P communicator construction
# ----------------------------------------------------------------------
@invariant("comm.p2p.plan", name="reduce-coverage", category="structural",
           description="the P2P reduction tree drains every GPU into the root exactly once")
def check_reduce_coverage(p: Payload):
    """Positions ``1..N-1`` each send exactly once, the root never sends,
    and every sender's payload reaches position 0."""
    n = p["num_gpus"]
    stages = list(p["stages"])
    sources = [src for stage in stages for src, _ in stage]
    if sorted(sources) != list(range(1, n)):
        yield (f"reduction sources {sorted(sources)} != positions "
               f"{list(range(1, n))}: some GPU never contributes (or "
               "contributes twice)")
        return
    if 0 in sources:
        yield "the root position 0 appears as a reduction source"
    # After all stages, every position must have merged (transitively) into 0.
    merged_into = {i: i for i in range(n)}
    for stage in stages:
        for src, dst in stage:
            if not (0 <= dst < n):
                yield f"reduction edge ({src}->{dst}) targets an invalid position"
                return
            merged_into[src] = dst
    for pos in range(1, n):
        cur, steps = pos, 0
        while cur != 0:
            nxt = merged_into[cur]
            if nxt == cur or steps > n:
                yield f"position {pos} never drains to the root (stuck at {cur})"
                return
            cur, steps = nxt, steps + 1


# ----------------------------------------------------------------------
# comm.collective — fired per NCCL collective after its cost is computed
# ----------------------------------------------------------------------
@invariant("comm.collective", name="collective-wire", category="conservation",
           description="the hop schedule moves exactly the closed-form wire total")
def check_collective_wire(p: Payload):
    """The integer hop-by-hop schedule must sum to the closed form:
    ``2(N-1) x S`` for AllReduce (segments conserve bytes exactly even for
    uneven integer splits), ``(N-1) x S`` for rooted reduce/broadcast."""
    size, nbytes = p["size"], p["nbytes"]
    if size < 2 or nbytes <= 0:
        expected = 0
    elif p["kind"] == "allreduce":
        expected = 2 * (size - 1) * nbytes
    else:
        expected = (size - 1) * nbytes
    if p["schedule_total"] != expected:
        return (f"{p['kind']} of {nbytes} bytes over {size} GPUs schedules "
                f"{p['schedule_total']} wire bytes, expected exactly {expected}")


@invariant("comm.collective", name="collective-bandwidth", category="capacity",
           description="collective duration covers its wire bytes at aggregate bandwidth")
def check_collective_bandwidth(p: Payload):
    """The modeled duration can never beat the serial-wire lower bound.

    The bound is algorithm-independent so every cost model (compat pinned
    ring, tuner ring/tree under any protocol) must respect it: at least
    one full payload (one ring segment, ``floor(S/N)``, for the
    reduce-scatter/all-gather AllReduce) has to cross a link at the best
    available aggregate bandwidth.  Pipelining can hide fill/drain and
    parallelize segments, but no schedule ships the collective faster
    than its largest mandatory serial transfer."""
    size, nbytes = p["size"], p["nbytes"]
    if size < 2 or nbytes <= 0:
        return None
    if p["kind"] == "allreduce":
        wire_floor = max(1, nbytes // size)
    else:
        wire_floor = nbytes
    lower = wire_floor / p["bound_bandwidth"]
    if _lt(p["duration"], lower):
        return (f"{p['kind']} of {nbytes} bytes over {size} GPUs took "
                f"{p['duration']:.3e}s < wire lower bound {lower:.3e}s at "
                f"aggregate bandwidth {p['bound_bandwidth']:.3e} B/s")


# ----------------------------------------------------------------------
# comm.hierarchical — fired per hierarchical cluster collective
# ----------------------------------------------------------------------
@invariant("comm.hierarchical", name="hierarchical-wire",
           category="conservation",
           description="the hierarchical phase schedule moves exactly the closed-form wire total")
def check_hierarchical_wire(p: Payload):
    """The enumerated per-phase schedule must sum to the closed form:
    ``M(g-1)S`` for each intra-node phase plus ``2(M-1)S`` for the
    inter-node exchange (identical for the ring and tree schedules), and
    the communicator's own ``wire_total`` must agree."""
    nodes, g, nbytes = p["nodes"], p["gpus_per_node"], p["nbytes"]
    if nbytes <= 0 or nodes * g < 2:
        expected = 0
    else:
        intra = nodes * (g - 1) * nbytes if g > 1 else 0
        inter = 2 * (nodes - 1) * nbytes if nodes > 1 else 0
        expected = 2 * intra + inter
    if p["schedule_total"] != expected:
        return (f"hierarchical {p['kind']} of {nbytes} bytes over {nodes} "
                f"node(s) x {g} GPUs schedules {p['schedule_total']} wire "
                f"bytes, expected exactly {expected}")
    if p["wire_total"] != expected:
        return (f"hierarchical {p['kind']}: closed-form wire_total "
                f"{p['wire_total']} disagrees with the expected {expected}")


@invariant("comm.hierarchical", name="hierarchical-floor",
           category="capacity",
           description="hierarchical collective duration covers its serial phase floors")
def check_hierarchical_floor(p: Payload):
    """The modeled duration can never beat the sum of the phases' serial
    wire floors: the phases are strictly ordered, each intra phase must
    move at least one ``S/g`` segment across the NVLink ring, and the
    inter phase at least one ``B_max/M`` segment over the fullest rail
    (sound for both the ring and tree exchanges)."""
    nodes, g, nbytes = p["nodes"], p["gpus_per_node"], p["nbytes"]
    if nbytes <= 0 or nodes * g < 2:
        return None
    floor = 0.0
    if g > 1:
        floor += 2.0 * max(1, nbytes // g) / p["intra_bound_bandwidth"]
    if nodes > 1:
        floor += (max(1, p["max_rail_bytes"] // nodes)
                  / p["rail_bound_bandwidth"])
    if _lt(p["duration"], floor):
        return (f"hierarchical {p['kind']} of {nbytes} bytes over {nodes} "
                f"node(s) took {p['duration']:.3e}s < serial phase floor "
                f"{floor:.3e}s")


@invariant("comm.hierarchical", name="hierarchical-agreement",
           category="temporal",
           description="the charged collective duration matches the analytic closed form")
def check_hierarchical_agreement(p: Payload):
    """Event mode charges one window per phase and analytic mode a single
    closed-form window; both must evaluate the same algebra, so the
    charged duration agrees with the analytic total within float
    tolerance on every topology -- the fast path's cross-validation."""
    if _ne(p["duration"], p["analytic"]):
        return (f"{p['mode']}-mode hierarchical {p['kind']} charges "
                f"{p['duration']!r}s but the analytic closed form gives "
                f"{p['analytic']!r}s")


@invariant("comm.hierarchical", name="rail-rebalance",
           category="conservation",
           description="re-railing conserves inter-node bytes and keeps failed rails empty")
def check_rail_rebalance(p: Payload):
    """A failed rail's traffic must re-rail *exactly*: the post-rebalance
    assignment sums to the payload (no bytes lost or invented), rails
    with scale 0 carry nothing, and a fully healthy rail set keeps the
    canonical :func:`~repro.comm.nccl.hierarchical.rail_bytes` split."""
    nodes, nbytes = p["nodes"], p["nbytes"]
    if nodes < 2 or nbytes <= 0:
        return None
    assignment = list(p["rail_assignment"])
    scales = list(p["rail_scales"])
    if sum(assignment) != nbytes:
        return (f"rail assignment {assignment} sums to {sum(assignment)} "
                f"bytes, expected exactly the {nbytes}-byte payload")
    for r, (b, s) in enumerate(zip(assignment, scales)):
        if s == 0.0 and b != 0:
            return (f"rail {r} is down (scale 0) but still carries "
                    f"{b} bytes instead of re-railing them")
    if all(s == 1.0 for s in scales):
        healthy = list(p["healthy_rail_bytes"])
        if assignment != healthy:
            return (f"healthy rails must keep the canonical split "
                    f"{healthy}, got {assignment}")


@invariant("comm.hierarchical", name="degraded-rail-floor",
           category="capacity",
           description="collective duration covers the slowest surviving rail's degraded floor")
def check_degraded_rail_floor(p: Payload):
    """The inter phase paces at its slowest loaded rail, so the charged
    duration can never beat any surviving rail's serial floor: one
    ``B_r/M`` segment of its assigned bytes at its *degraded* bandwidth
    (sound for ring and tree -- both move at least that much serially)."""
    nodes, nbytes = p["nodes"], p["nbytes"]
    if nodes < 2 or nbytes <= 0:
        return None
    floor = 0.0
    for b, s in zip(p["rail_assignment"], p["rail_scales"]):
        if b <= 0 or s <= 0.0:
            continue
        floor = max(floor,
                    max(1, b // nodes) / (p["rail_bound_bandwidth"] * s))
    if _lt(p["duration"], floor):
        return (f"hierarchical {p['kind']} of {nbytes} bytes took "
                f"{p['duration']:.3e}s < the slowest surviving rail's "
                f"degraded serial floor {floor:.3e}s")


# ----------------------------------------------------------------------
# trainer.fastpath — fired once per measured hierarchical segment
# ----------------------------------------------------------------------
@invariant("trainer.fastpath", name="fallback-agreement",
           category="temporal",
           description="the fast path never silently ignores faults and dominates the shared collective floor")
def check_fallback_agreement(p: Payload):
    """The fault-aware fast-path contract, observed from the trainer: a
    plan the analytic path cannot represent must have resolved to the
    event path (never silently simulating a healthy cluster), and the
    measured mean iteration must dominate the fault-aware closed-form
    collective time both paths share (the iteration serializes its
    collectives on one stream, so their algebraic sum is a floor --
    event-vs-fallback temporal agreement)."""
    if p["faulted"] and not p["analytic_ok"] and p["resolved"] != "event":
        return (f"fault plan unrepresentable on the analytic path "
                f"resolved to {p['resolved']!r} (requested "
                f"{p['requested']!r}) instead of falling back to the "
                f"event path")
    if p["iterations"] and _lt(p["mean_iteration"], p["analytic_wu"]):
        return (f"mean iteration {p['mean_iteration']:.3e}s beats the "
                f"closed-form collective floor {p['analytic_wu']:.3e}s "
                f"shared by the event and analytic paths")


# ----------------------------------------------------------------------
# trainer.stages — fired after each measured segment, over profiler spans
# ----------------------------------------------------------------------
def _spans_by(spans, name: str):
    """Iterate spans with the given stage name."""
    return (s for s in spans if s.name == name)


@invariant("trainer.stages", name="spans-nested", category="temporal",
           description="FP/BP/WU spans nest inside their iteration window in stage order")
def check_spans_nested(p: Payload) -> Iterator[str]:
    """Every stage span lies inside its iteration window; per GPU the FP
    span ends before the BP span starts, and WU starts after every BP."""
    spans = p["spans"]
    windows = {s.iteration: s for s in _spans_by(spans, "iteration")}
    bp_end = {}
    for s in spans:
        if s.name not in ("fp", "bp", "wu"):
            continue
        w = windows.get(s.iteration)
        if w is None:
            yield f"{s.name} span of iteration {s.iteration} has no iteration window"
            continue
        if _lt(s.start, w.start) or _lt(w.end, s.end):
            yield (f"{s.name} span [{s.start!r}, {s.end!r}] of iteration "
                   f"{s.iteration} escapes its window [{w.start!r}, {w.end!r}]")
        if s.name == "bp":
            bp_end[(s.gpu, s.iteration)] = s.end
    for s in _spans_by(spans, "fp"):
        end = bp_end.get((s.gpu, s.iteration))
        if end is not None and _lt(end, s.end):
            yield (f"gpu{s.gpu} iteration {s.iteration}: FP ends at {s.end!r} "
                   f"after BP already ended at {end!r}")
    for s in _spans_by(spans, "wu"):
        for (gpu, iteration), end in bp_end.items():
            if iteration == s.iteration and _lt(s.start, end):
                yield (f"iteration {s.iteration}: WU starts at {s.start!r} "
                       f"before gpu{gpu} finished BP at {end!r}")


@invariant("trainer.stages", name="iterations-monotone", category="temporal",
           description="iteration windows are ordered and non-overlapping")
def check_iterations_monotone(p: Payload) -> Iterator[str]:
    """Iteration windows must be well-formed and strictly sequential."""
    windows = sorted(_spans_by(p["spans"], "iteration"), key=lambda s: s.iteration)
    for s in windows:
        if _lt(s.end, s.start):
            yield f"iteration {s.iteration} window ends before it starts"
    for prev, cur in zip(windows, windows[1:]):
        if _lt(cur.start, prev.end):
            yield (f"iteration {cur.iteration} starts at {cur.start!r} before "
                   f"iteration {prev.iteration} ended at {prev.end!r}")


@invariant("trainer.stages", name="step-accounting", category="temporal",
           description="WU end plus the host barrier reconstructs iteration end")
def check_step_accounting(p: Payload) -> Iterator[str]:
    """``iteration.end == wu.end + host_overhead`` within tolerance — the
    FP+BP / WU / host-overhead decomposition must reconstruct step time."""
    spans = p["spans"]
    windows = {s.iteration: s for s in _spans_by(spans, "iteration")}
    for s in _spans_by(spans, "wu"):
        w = windows.get(s.iteration)
        if w is None:
            continue
        reconstructed = s.end + p["host_overhead"]
        if _ne(w.end, reconstructed):
            yield (f"iteration {s.iteration}: window ends at {w.end!r} but "
                   f"wu.end + host overhead reconstructs {reconstructed!r}")


@invariant("trainer.stages", name="gpu-busy", category="capacity",
           description="per-GPU kernel busy time never exceeds the measured window")
def check_gpu_busy(p: Payload) -> Iterator[str]:
    """Kernels on one GPU serialize, so their summed duration is bounded by
    the measured wall window."""
    for gpu, busy in p["busy"].items():
        if busy < -ABS_TOL:
            yield f"gpu{gpu}: negative kernel busy time {busy!r}"
        elif _lt(p["elapsed"], busy):
            yield (f"gpu{gpu}: kernels busy {busy:.6e}s exceed the measured "
                   f"window of {p['elapsed']:.6e}s")


# ----------------------------------------------------------------------
# trainer.traffic — fired after each measured segment, over transfers
# ----------------------------------------------------------------------
@invariant("trainer.traffic", name="gradient-traffic", category="conservation",
           description="measured gradient traffic equals the analytic per-iteration total")
def check_gradient_traffic(p: Payload):
    """Recorded p2p/nccl bytes must equal iterations x the exact analytic
    per-iteration wire total (gradient bytes == parameter bytes per GPU,
    scaled by the configured gradient compression)."""
    expected = p["expected"]
    if expected is None:
        return None
    measured = sum(p["measured"].values())
    want = expected * p["iterations"]
    if measured != want:
        return (f"{p['comm']} sync recorded {measured} bytes over "
                f"{p['iterations']} iteration(s), expected exactly {want} "
                f"({expected}/iteration)")


# ----------------------------------------------------------------------
# trainer.epoch — fired once per (healthy or faulted) run
# ----------------------------------------------------------------------
@invariant("trainer.epoch", name="epoch-accounting", category="conservation",
           description="epoch time equals iterations x mean step plus fixed overheads")
def check_epoch_accounting(p: Payload):
    """The reported epoch time must decompose exactly into the measured
    mean iteration times the iteration count plus fixed overheads."""
    reconstructed = p["iterations"] * p["mean_iteration"] + p["fixed"]
    if _ne(p["epoch_time"], reconstructed):
        return (f"epoch time {p['epoch_time']!r} != {p['iterations']} x "
                f"{p['mean_iteration']!r} + fixed {p['fixed']!r} "
                f"(= {reconstructed!r})")


# ----------------------------------------------------------------------
# trainer.memory — fired once per run, over sampled memory readings
# ----------------------------------------------------------------------
@invariant("trainer.memory", name="memory-budget", category="capacity",
           description="sampled per-GPU memory stays within HBM2 capacity when enforced")
def check_memory_budget(p: Payload) -> Iterator[str]:
    """With memory checking enabled the run must never have sampled a
    footprint above device capacity (16 GB HBM2 on the V100) — exceeding
    it should have raised OutOfMemoryError instead."""
    if not p["check_memory"]:
        return
    for gpu, total in p["totals"]:
        if total > p["capacity"]:
            yield (f"gpu{gpu}: sampled footprint {total} bytes exceeds "
                   f"device capacity {p['capacity']} bytes despite memory "
                   "checking being enabled")
