"""The invariant engine: enforcement modes, violation records, statistics.

:class:`CheckEngine` is the single object threaded through the simulator.
Instrumented components call ``engine.check(point, **payload)`` at their
checkpoints; the engine dispatches the payload to every checker registered
for ``point`` (see :mod:`repro.checks.registry`) and enforces the result
according to its :class:`CheckMode`:

``off``
    ``check()`` returns immediately — callers additionally gate payload
    construction on :attr:`CheckEngine.enabled`, so a disabled engine (or
    no engine at all, the default) leaves simulated outputs byte-identical.
``warn``
    Violations are appended to :attr:`CheckEngine.violations`, logged on
    the ``repro.checks`` logger, and published to the observability bus as
    :class:`~repro.obs.events.InvariantViolationEvent` (feeding the
    ``repro_invariant_violations_total`` counter).
``strict``
    Everything ``warn`` does, then
    :class:`~repro.core.errors.InvariantViolationError` is raised.
"""

from __future__ import annotations

import enum
import logging
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.core.errors import ConfigurationError, InvariantViolationError
from repro.checks.registry import checkers_at
from repro.perf.spans import PERF

logger = logging.getLogger("repro.checks")


class CheckMode(enum.Enum):
    """Enforcement mode of a :class:`CheckEngine`."""

    OFF = "off"
    WARN = "warn"
    STRICT = "strict"

    @classmethod
    def parse(cls, value: Union[str, "CheckMode", None]) -> "CheckMode":
        """Coerce a CLI/string spelling (or ``None`` = off) to a mode."""
        if value is None:
            return cls.OFF
        if isinstance(value, cls):
            return value
        try:
            return cls(str(value).lower())
        except ValueError:
            raise ConfigurationError(
                f"unknown invariants mode {value!r}; expected one of "
                f"{', '.join(m.value for m in cls)}"
            ) from None


@dataclass(frozen=True)
class Violation:
    """One recorded invariant violation.

    ``at`` is the simulated time the checkpoint fired (0.0 for checks that
    run outside the sim clock, e.g. at communicator construction).
    """

    invariant: str
    checkpoint: str
    message: str
    at: float = 0.0


class CheckEngine:
    """Dispatches checkpoint payloads to registered invariant checkers.

    One engine is created per trainer run (the sweep runner builds one per
    point when ``invariants`` is not ``off``).  It accumulates per-invariant
    ``[checked, violated]`` counters in :attr:`stats` and the full
    :class:`Violation` records in :attr:`violations`; both survive a strict
    raise so failed runs still report what fired.
    """

    def __init__(self, mode: Union[str, CheckMode] = CheckMode.OFF,
                 bus: Optional[Any] = None) -> None:
        self.mode = CheckMode.parse(mode)
        self.bus = bus
        self.stats: Dict[str, List[int]] = {}
        self.violations: List[Violation] = []

    @property
    def enabled(self) -> bool:
        """True when checkpoints should build payloads and call :meth:`check`."""
        return self.mode is not CheckMode.OFF

    def bind_bus(self, bus: Any) -> None:
        """Attach an observability :class:`~repro.obs.bus.EventBus`."""
        self.bus = bus

    def check(self, point: str, **payload: Any) -> None:
        """Run every checker registered at ``point`` against ``payload``.

        No-op in ``off`` mode.  In ``warn`` mode violations are recorded,
        logged, and published; in ``strict`` mode the first violation also
        raises :class:`~repro.core.errors.InvariantViolationError`.
        """
        if self.mode is CheckMode.OFF:
            return
        if PERF.enabled:
            # One payload was built by the calling checkpoint; each checker
            # dispatch is counted separately so the ratio is visible.
            PERF.count("checks.payloads")
        at = float(payload.get("now", 0.0))
        for checker in checkers_at(point):
            if PERF.enabled:
                PERF.count("checks.evaluations")
            entry = self.stats.setdefault(checker.invariant, [0, 0])
            entry[0] += 1
            result = checker.fn(payload)
            if result is None:
                continue
            messages = [result] if isinstance(result, str) else list(result)
            if not messages:
                continue
            entry[1] += len(messages)
            for message in messages:
                self._handle_violation(checker.invariant, point, message, at)

    def _handle_violation(self, invariant: str, checkpoint: str,
                          message: str, at: float) -> None:
        """Record, log, publish, and (in strict mode) raise one violation."""
        violation = Violation(invariant, checkpoint, message, at)
        self.violations.append(violation)
        logger.warning("invariant %s violated at %s (t=%g): %s",
                       invariant, checkpoint, at, message)
        if self.bus is not None:
            from repro.obs.events import InvariantViolationEvent

            self.bus.publish(InvariantViolationEvent(
                invariant=invariant, checkpoint=checkpoint,
                message=message, mode=self.mode.value, at=at))
        if self.mode is CheckMode.STRICT:
            raise InvariantViolationError(invariant, checkpoint, message)

    def violation_records(self) -> Tuple[Violation, ...]:
        """The accumulated violations as an immutable tuple."""
        return tuple(self.violations)

    def stats_dict(self) -> Dict[str, Tuple[int, int]]:
        """Picklable ``{invariant: (checked, violated)}`` snapshot."""
        return {name: (entry[0], entry[1]) for name, entry in self.stats.items()}


def merge_stats(target: Dict[str, List[int]],
                stats: Dict[str, Tuple[int, int]]) -> None:
    """Fold one engine's :meth:`CheckEngine.stats_dict` into ``target``.

    Used by the sweep runner to aggregate per-point statistics (worker
    processes ship their engine's snapshot back with each result).
    """
    for name, (checked, violated) in stats.items():
        entry = target.setdefault(name, [0, 0])
        entry[0] += checked
        entry[1] += violated
