"""Runtime physical-invariant verification (the self-checking simulator).

Every figure in the paper rests on physically consistent simulated
quantities: link bytes that respect NVLink/PCIe capacity, FP+BP/WU
decompositions that sum to step time, memory curves bounded by the V100's
16 GB HBM2.  This package verifies those properties *while the simulator
runs*:

* :mod:`repro.checks.registry` — the checker registry and the
  :func:`invariant` registration decorator.
* :mod:`repro.checks.engine`   — :class:`CheckEngine` with its three
  enforcement modes (``off`` / ``warn`` / ``strict``), violation records,
  and per-invariant statistics.
* :mod:`repro.checks.checkers` — the 19 shipped checkers across the
  conservation / capacity / temporal / structural categories.
* :mod:`repro.checks.expect`   — closed-form expected gradient traffic,
  the independent oracle for the conservation audit.
* :mod:`repro.checks.dag`      — the analytic-DAG cross-check oracle:
  Shi et al.'s stage model of synchronous SGD as a lower bound on every
  measured iteration, independent of the event engine.

Usage: pass ``checks=CheckEngine("strict")`` to a
:class:`~repro.train.trainer.Trainer`, run sweeps with
``--invariants=warn`` / ``--strict-invariants``, or run the full paper
grid under ``repro-experiments selfcheck``.  See docs/INVARIANTS.md.
"""

from repro.checks.engine import CheckEngine, CheckMode, Violation, merge_stats
from repro.checks.expect import expected_sync_bytes
from repro.checks.registry import (
    Checker,
    all_checkers,
    checkers_at,
    get_checker,
    invariant,
)

# Importing the catalogs registers every shipped checker.
from repro.checks import checkers as _checkers  # noqa: F401  (side effect)
from repro.checks import dag as _dag  # noqa: F401  (side effect)

__all__ = [
    "CheckEngine",
    "CheckMode",
    "Checker",
    "Violation",
    "all_checkers",
    "checkers_at",
    "expected_sync_bytes",
    "get_checker",
    "invariant",
    "merge_stats",
]
