"""Closed-form expected wire traffic per training iteration.

:func:`expected_sync_bytes` reproduces, independently of the simulated
data path, the exact number of bytes each communication method records as
``p2p``/``nccl`` transfers when synchronizing one iteration's gradients.
The trainer feeds the result to the ``conservation.gradient-traffic``
checker, which compares it against the profiler's measured transfer
records — a full end-to-end conservation audit of the gradient exchange.

The per-method formulas (``b = max(1, floor(nbytes x scale))`` per array):

``p2p`` (MXNet ``device`` KVStore)
    Small arrays ride the binomial reduction tree + broadcast:
    ``2(N-1) x b``.  Arrays at or above the BIGARRAY bound are sharded:
    each of the N owners receives N-1 and sends N-1 shards of
    ``ceil(b / N)`` bytes, so ``2 x N x (N-1) x ceil(b / N)``.
``nccl``
    KVStore semantics: one reduce plus one broadcast, each recording the
    full payload once: ``2 x b``.
``nccl-allreduce``
    One fused AllReduce record: ``b``.
``nccl-hierarchical``
    The cluster tier's hierarchical AllReduce also records one fused
    transfer per array: ``b`` (the per-phase wire accounting lives in
    the ``comm.hierarchical`` checkpoint instead).
``ps-gpu``
    Flat-star parameter server: every worker sends its whole gradient to
    GPU0 and receives whole weights back, never sharded: ``2(N-1) x b``.
``local``
    Host staging records only ``d2h``/``h2d`` transfers, which prefetching
    can slide across the measurement boundary: ``0`` p2p/nccl bytes.

A single GPU never records sync transfers, so every method expects 0.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.dnn.stats import WeightArray


def expected_sync_bytes(
    comm_name: str,
    arrays: Iterable[WeightArray],
    num_gpus: int,
    gradient_bytes_scale: float = 1.0,
) -> Optional[int]:
    """Exact ``p2p``+``nccl`` bytes one iteration's gradient sync records.

    Returns ``None`` (checker skips) for an unrecognized communicator name
    — e.g. a user-supplied custom communicator with unknown semantics.
    """
    if comm_name not in ("p2p", "ps-gpu", "nccl", "nccl-allreduce",
                         "nccl-hierarchical", "local"):
        return None
    if num_gpus <= 1 or comm_name == "local":
        return 0
    from repro.comm.p2p import BIGARRAY_BOUND_ELEMENTS

    total = 0
    for array in arrays:
        b = max(1, int(array.nbytes * gradient_bytes_scale))
        if comm_name == "p2p":
            if array.numel >= BIGARRAY_BOUND_ELEMENTS:
                shard = -(-b // num_gpus)
                total += 2 * num_gpus * (num_gpus - 1) * shard
            else:
                total += 2 * (num_gpus - 1) * b
        elif comm_name == "ps-gpu":
            total += 2 * (num_gpus - 1) * b
        elif comm_name == "nccl":
            total += 2 * b
        else:  # nccl-allreduce, nccl-hierarchical
            total += b
    return total
