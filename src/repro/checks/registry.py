"""Registry of invariant checkers keyed by checkpoint.

A *checker* is a plain function taking a payload dict and returning either
``None`` (the invariant holds), a string, or an iterable of strings (one
per violated property).  Checkers register themselves with the
:func:`invariant` decorator, declaring the checkpoint they attach to, a
dotted ``category.name`` identity, and a one-line description::

    @invariant("sim.event", name="event-monotone", category="temporal",
               description="event timestamps never run backwards")
    def check_event_monotone(payload):
        if payload["when"] < payload["now"]:
            return f"event at t={payload['when']} scheduled before now=..."

The four categories mirror the physics the paper's figures rest on:
``conservation`` (bytes in == bytes out), ``capacity`` (nothing exceeds a
hardware ceiling), ``temporal`` (clocks and spans are ordered), and
``structural`` (rings/trees actually span the participants).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional, Tuple, Union

#: Result type a checker may return: nothing, one message, or several.
CheckResult = Union[None, str, Iterable[str]]

#: Signature of a checker function.
CheckerFn = Callable[[Mapping[str, Any]], CheckResult]

#: The only valid checker categories.
CATEGORIES = ("conservation", "capacity", "temporal", "structural")


@dataclass(frozen=True)
class Checker:
    """One registered invariant checker.

    ``invariant`` is the dotted ``category.name`` identity used in
    violation records, obs metric labels, and the selfcheck report.
    """

    name: str
    category: str
    checkpoint: str
    description: str
    fn: CheckerFn

    @property
    def invariant(self) -> str:
        """Dotted identity, e.g. ``"conservation.collective-wire"``."""
        return f"{self.category}.{self.name}"


_BY_POINT: Dict[str, List[Checker]] = {}
_BY_INVARIANT: Dict[str, Checker] = {}


def invariant(
    checkpoint: str,
    *,
    name: str,
    category: str,
    description: str,
) -> Callable[[CheckerFn], CheckerFn]:
    """Class-level decorator registering ``fn`` as a checker.

    Raises :class:`ValueError` for an unknown category or a duplicate
    ``category.name`` identity — checker identities are global so that
    violation records and metrics stay unambiguous.
    """
    if category not in CATEGORIES:
        raise ValueError(
            f"unknown checker category {category!r}; expected one of {CATEGORIES}")

    def register(fn: CheckerFn) -> CheckerFn:
        checker = Checker(name, category, checkpoint, description, fn)
        if checker.invariant in _BY_INVARIANT:
            raise ValueError(f"duplicate invariant {checker.invariant!r}")
        _BY_INVARIANT[checker.invariant] = checker
        _BY_POINT.setdefault(checkpoint, []).append(checker)
        return fn

    return register


def checkers_at(checkpoint: str) -> Tuple[Checker, ...]:
    """All checkers attached to ``checkpoint`` (empty tuple if none)."""
    return tuple(_BY_POINT.get(checkpoint, ()))


def all_checkers() -> Tuple[Checker, ...]:
    """Every registered checker, sorted by ``category.name``."""
    return tuple(_BY_INVARIANT[k] for k in sorted(_BY_INVARIANT))


def get_checker(invariant_name: str) -> Optional[Checker]:
    """Look one checker up by its dotted identity (``None`` if absent)."""
    return _BY_INVARIANT.get(invariant_name)
