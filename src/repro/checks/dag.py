"""Analytic-DAG cross-check oracle for synchronous SGD (Shi et al.).

The DAG model of S-SGD decomposes one iteration into input staging,
per-GPU forward/backward compute, gradient communication, and host-side
synchronization stages.  Because the event-driven simulation schedules
exactly those stages -- just with contention, pipelining and overlap --
the closed-form critical path of the DAG is a *sound lower bound* on
every simulated iteration:

``iteration >= max(input + compute, wire) + host``

where, per measured system,

``compute``
    the per-GPU sum of scheduled FP+BP kernel durations times the
    slowest device's best-case speed factor (time-varying
    :class:`~repro.faults.plan.SlowdownProfile` stragglers contribute
    their *minimum* step factor; ECC retirement delays only add time and
    are ignored) -- contention and engine serialization only lengthen it;
``input``
    the fixed input-pipeline cost every GPU pays before FP
    (``input_pipeline_residual + input_cost_per_image x batch``);
``wire``
    the strategy's expected gradient bytes per iteration
    (:func:`~repro.checks.expect.expected_sync_bytes`) divided by the
    full-duplex aggregate peak bandwidth of the (possibly degraded)
    topology -- no schedule can move the bytes faster than every link
    flat out;
``host``
    the per-iteration barrier the trainer always pays (framework
    bookkeeping + per-GPU stream sync + communicator rendezvous).

The bound is deliberately loose (peak rather than effective bandwidth,
minimum straggler factor) so it holds for every strategy x communicator
x topology point of the paper grid; what it catches is structural
regressions -- a dropped kernel schedule, a transfer that bypasses the
fabric, a barrier that stopped being paid -- independently of the event
engine, because none of these floors are derived from simulated events.

The trainer fires the ``trainer.dag`` checkpoint after each measured
segment; the payload contract is documented in docs/INVARIANTS.md.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.checks.checkers import _lt
from repro.checks.registry import invariant

Payload = Mapping[str, Any]


def device_factor_floor(device) -> float:
    """The smallest kernel-duration multiplier ``device`` can exhibit.

    Scalar speed factors are exact; a time-varying slowdown profile
    contributes the minimum over its steps; an unknown profile object
    (anything with ``.at`` but no ``.steps``) degrades to ``0.0`` --
    no compute floor, never a false positive.
    """
    slowdown = getattr(device, "slowdown", None)
    if slowdown is None:
        return float(device.speed_factor)
    steps = getattr(slowdown, "steps", None)
    if not steps:
        return 0.0
    return min(factor for _, factor in steps)


def aggregate_peak_bandwidth(topology) -> float:
    """Full-duplex aggregate peak bandwidth of ``topology`` (bytes/s).

    Every link moves data in both directions at once, so the hard
    ceiling on total wire throughput is twice the sum of per-direction
    peak bandwidths.
    """
    return 2.0 * sum(link.peak_bandwidth() for link in topology.links)


def critical_path_floor(compute_floor: float, input_floor: float,
                        wire_floor: float, host_floor: float) -> float:
    """The DAG critical-path lower bound on one iteration (seconds)."""
    return max(input_floor + compute_floor, wire_floor) + host_floor


# ----------------------------------------------------------------------
# trainer.dag — fired by the trainer after each measured segment
# ----------------------------------------------------------------------
@invariant("trainer.dag", name="dag-lower-bound", category="temporal",
           description="the analytic S-SGD DAG critical path bounds every "
                       "measured iteration")
def check_dag_lower_bound(p: Payload):
    """The measured mean iteration must dominate the analytic floor."""
    floor = critical_path_floor(
        p["compute_floor"], p["input_floor"], p["wire_floor"],
        p["host_floor"],
    )
    if _lt(p["mean_iteration"], floor):
        return (
            f"measured mean iteration {p['mean_iteration']:.6e}s beats the "
            f"analytic DAG critical-path floor {floor:.6e}s "
            f"(compute={p['compute_floor']:.3e}s "
            f"input={p['input_floor']:.3e}s wire={p['wire_floor']:.3e}s "
            f"host={p['host_floor']:.3e}s over {p['iterations']} iterations)"
        )
