"""Low-overhead hierarchical wall-clock spans and counters.

One :class:`PerfProfiler` measures the *simulator's own* execution the way
:class:`~repro.profile.profiler.Profiler` measures the simulated GPU's.
Instrumented components use the module singleton :data:`PERF`::

    from repro.perf.spans import PERF

    with PERF.span("nccl.build"):
        plan = build_ring_plan(...)
    PERF.count("sim.events", env.dispatched)

Disabled (the default), ``span()`` hands back a shared no-op context
manager and ``count()`` returns after one attribute check, so the hot
paths stay within measurement noise and simulated outputs are
byte-identical.  Enabled, a span costs two ``time.perf_counter()`` calls
and one list append.

Spans nest: each record carries its slash-joined path (``"trainer.measure/
nccl.build"``), so :meth:`PerfProfiler.aggregate` can attribute *self*
time (total minus enclosed children) per path -- the number that tells
you where the wall-clock actually goes.  The profiler is intentionally
not thread-safe: the simulator is single-threaded, and process-pool
workers each get their own module state.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple


@dataclass(frozen=True)
class SpanRecord:
    """One closed span: its path in the open-span stack and its window."""

    name: str
    path: str
    depth: int
    start: float
    end: float

    @property
    def duration(self) -> float:
        """Wall-clock seconds spent inside the span (children included)."""
        return self.end - self.start


@dataclass
class SpanAggregate:
    """Per-path totals produced by :meth:`PerfProfiler.aggregate`."""

    calls: int = 0
    total: float = 0.0      # inclusive wall-clock seconds
    self_time: float = 0.0  # total minus directly enclosed child spans


class _NoopSpan:
    """The shared do-nothing context manager handed out while disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc_info: object) -> None:
        return None


_NOOP = _NoopSpan()


class _Span:
    """A live span; closing it (even via an exception) records it."""

    __slots__ = ("_perf", "name", "path", "depth", "start")

    def __init__(self, perf: "PerfProfiler", name: str) -> None:
        self._perf = perf
        self.name = name

    def __enter__(self) -> "_Span":
        stack = self._perf._stack
        self.depth = len(stack)
        self.path = f"{stack[-1].path}/{self.name}" if stack else self.name
        stack.append(self)
        self.start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        end = time.perf_counter()
        stack = self._perf._stack
        # Pop through any abandoned inner spans (a raise between
        # __enter__ and __exit__ of a child can strand it) so nesting
        # stays consistent under exceptions.
        while stack and stack[-1] is not self:
            stack.pop()
        if stack:
            stack.pop()
        self._perf.records.append(
            SpanRecord(name=self.name, path=self.path, depth=self.depth,
                       start=self.start, end=end)
        )


class PerfProfiler:
    """Collects spans and counters for one profiled stretch of execution."""

    def __init__(self, enabled: bool = False) -> None:
        self.enabled = enabled
        self.records: List[SpanRecord] = []
        self.counters: Dict[str, float] = {}
        self._stack: List[_Span] = []

    # -- lifecycle ------------------------------------------------------
    def enable(self) -> None:
        """Start recording (idempotent)."""
        self.enabled = True

    def disable(self) -> None:
        """Stop recording; accumulated data stays readable."""
        self.enabled = False

    def reset(self) -> None:
        """Drop all recorded spans, counters and any open span stack."""
        self.records.clear()
        self.counters.clear()
        self._stack.clear()

    # -- recording ------------------------------------------------------
    def span(self, name: str) -> object:
        """A context manager timing one named region (no-op if disabled)."""
        if not self.enabled:
            return _NOOP
        return _Span(self, name)

    def count(self, name: str, amount: float = 1) -> None:
        """Add ``amount`` to the named counter (no-op if disabled)."""
        if not self.enabled:
            return
        self.counters[name] = self.counters.get(name, 0) + amount

    # -- analysis -------------------------------------------------------
    def aggregate(self) -> Dict[str, SpanAggregate]:
        """Per-path call counts, inclusive totals and self time.

        Self time subtracts each span's *directly* enclosed children, so
        the self-time column sums to the root spans' inclusive total.
        """
        out: Dict[str, SpanAggregate] = {}
        child_total: Dict[str, float] = {}
        for record in self.records:
            agg = out.setdefault(record.path, SpanAggregate())
            agg.calls += 1
            agg.total += record.duration
            if record.depth > 0:
                parent = record.path.rsplit("/", 1)[0]
                child_total[parent] = child_total.get(parent, 0.0) + record.duration
        for path, agg in out.items():
            agg.self_time = agg.total - child_total.get(path, 0.0)
        return out

    def spans_dict(self) -> Dict[str, Dict[str, float]]:
        """JSON-ready ``{path: {calls, total, self}}`` snapshot."""
        return {
            path: {
                "calls": agg.calls,
                "total": round(agg.total, 6),
                "self": round(agg.self_time, 6),
            }
            for path, agg in sorted(self.aggregate().items())
        }

    def counters_dict(self) -> Dict[str, float]:
        """JSON-ready counter snapshot, sorted by name."""
        return {name: self.counters[name] for name in sorted(self.counters)}

    def to_registry(self, registry) -> None:
        """Publish the current totals into an obs
        :class:`~repro.obs.metrics.MetricsRegistry` (``perf_span_seconds`` /
        ``perf_span_calls`` gauges labelled by path, ``perf_counter_total``
        labelled by counter name), so the PR 1 exporters -- Prometheus
        text, CSV -- can ship simulator self-time alongside the simulated
        metrics."""
        seconds = registry.gauge(
            "perf_span_seconds",
            "Inclusive wall-clock seconds of one simulator self-time span path",
            labelnames=("path",),
        )
        calls = registry.gauge(
            "perf_span_calls",
            "Times one simulator self-time span path was entered",
            labelnames=("path",),
        )
        for path, agg in sorted(self.aggregate().items()):
            seconds.labels(path=path).set(agg.total)
            calls.labels(path=path).set(agg.calls)
        counter = registry.gauge(
            "perf_counter_total",
            "Simulator self-profiling counter totals",
            labelnames=("name",),
        )
        for name, value in sorted(self.counters.items()):
            counter.labels(name=name).set(value)


def render_perf_report(perf: PerfProfiler, top: Optional[int] = None) -> str:
    """A fixed-width self-time report, widest totals first."""
    aggregates = sorted(
        perf.aggregate().items(), key=lambda item: -item[1].total
    )
    if top is not None:
        aggregates = aggregates[:top]
    lines = [f"{'span path':<44} {'calls':>8} {'total s':>10} {'self s':>10}"]
    for path, agg in aggregates:
        lines.append(
            f"{path:<44} {agg.calls:>8} {agg.total:>10.4f} {agg.self_time:>10.4f}"
        )
    if perf.counters:
        lines.append("")
        lines.append(f"{'counter':<44} {'value':>16}")
        for name, value in sorted(perf.counters.items()):
            lines.append(f"{name:<44} {value:>16g}")
    return "\n".join(lines)


#: The process-wide profiler every instrumented component consults.
#: Disabled by default; ``repro-experiments`` enables it under
#: ``--self-profile`` and the bench harness enables it per workload.
PERF = PerfProfiler()
