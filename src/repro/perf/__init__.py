"""Simulator self-profiling: where does *our* wall-clock go?

The paper's method is attributing time on real hardware; :mod:`repro.profile`
applies that idea to the simulated DGX-1.  This package closes the loop and
applies it to the simulator itself: hierarchical wall-clock spans and event
counters (:mod:`repro.perf.spans`), a benchmark harness that times the
canonical workloads with warmup/repeat/min-of-N discipline and writes a
schema-versioned ``BENCH_*.json`` trajectory file (:mod:`repro.perf.harness`),
a Chrome-trace exporter of simulator self-time (:mod:`repro.perf.trace`) and
a noise-aware regression gate (:mod:`repro.perf.gate`, fronted by
``tools/check_bench.py``).

Profiling is **off by default**: every instrumentation site in the simulator
is gated on :data:`PERF.enabled <repro.perf.spans.PerfProfiler.enabled>`, so
a disabled profiler leaves simulated outputs byte-identical and costs one
attribute check per site.

Instrumented modules deep inside the simulator (``gpu.kernel``,
``comm.nccl``, ...) import :data:`PERF` from :mod:`repro.perf.spans`, which
triggers *this* package ``__init__`` -- so only the dependency-free spans
module is imported eagerly here.  The harness/gate/trace re-exports (which
reach back up into :mod:`repro.experiments`) resolve lazily via PEP 562
``__getattr__``.
"""

from typing import Any

from repro.perf.spans import PERF, PerfProfiler, SpanRecord, render_perf_report

#: Lazy re-exports: attribute name -> defining submodule.
_LAZY = {
    "BenchComparison": "repro.perf.gate",
    "WorkloadVerdict": "repro.perf.gate",
    "compare_bench": "repro.perf.gate",
    "render_comparison": "repro.perf.gate",
    "BENCH_SCHEMA_VERSION": "repro.perf.harness",
    "BenchValidationError": "repro.perf.harness",
    "BenchWorkload": "repro.perf.harness",
    "all_workloads": "repro.perf.harness",
    "load_bench": "repro.perf.harness",
    "machine_fingerprint": "repro.perf.harness",
    "run_harness": "repro.perf.harness",
    "validate_bench": "repro.perf.harness",
    "workloads_for_profile": "repro.perf.harness",
    "write_bench": "repro.perf.harness",
    "export_perf_chrome_trace": "repro.perf.trace",
    "perf_chrome_trace_events": "repro.perf.trace",
}


def __getattr__(name: str) -> Any:
    """Resolve the heavy re-exports on first touch (PEP 562)."""
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)


def __dir__() -> list:
    return sorted(set(globals()) | set(_LAZY))


__all__ = [
    "BENCH_SCHEMA_VERSION",
    "BenchComparison",
    "BenchValidationError",
    "BenchWorkload",
    "PERF",
    "PerfProfiler",
    "SpanRecord",
    "WorkloadVerdict",
    "all_workloads",
    "compare_bench",
    "export_perf_chrome_trace",
    "load_bench",
    "machine_fingerprint",
    "perf_chrome_trace_events",
    "render_comparison",
    "render_perf_report",
    "run_harness",
    "validate_bench",
    "workloads_for_profile",
    "write_bench",
]
