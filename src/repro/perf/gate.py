"""The noise-aware bench regression gate behind ``tools/check_bench.py``.

Compares a fresh bench document against the committed baseline
(``BENCH_6.json``) and fails on wall-clock regressions.  Two defenses
against false alarms:

* **Machine normalization** -- both documents embed a pure-Python
  calibration score (reference-loop ops/second).  A baseline time is
  first rescaled by ``baseline_score / fresh_score``: a machine that runs
  the reference loop 2x slower is *expected* to run the workloads 2x
  slower, and only slowdowns beyond that ratio count.
* **Tolerance** -- the normalized ratio must exceed ``1 + tolerance``
  to fail.  The default (0.35) absorbs scheduler jitter and cache-state
  variance between CI runs; CI smoke passes a larger one because shared
  runners are noisier still.

Workloads present in only one document are reported as skipped, never
failed: the committed baseline carries both the ``fast`` and ``full``
profiles, while CI smoke runs only ``fast``, so a partial fresh document
is the normal case.  Improvements are highlighted so the trajectory of
ROADMAP item 1 (an order of magnitude on the selfcheck) is visible in CI
logs PR over PR.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Mapping, Tuple

#: Default headroom: a workload fails only when its normalized wall-clock
#: exceeds the baseline by more than this fraction.
DEFAULT_TOLERANCE = 0.35


@dataclass(frozen=True)
class WorkloadVerdict:
    """The gate's decision for one workload name."""

    name: str
    status: str            # "ok" | "improved" | "regressed" | "skipped"
    baseline: float = 0.0  # committed wall-clock, seconds
    expected: float = 0.0  # baseline rescaled to the fresh machine
    fresh: float = 0.0     # measured wall-clock, seconds
    ratio: float = 0.0     # fresh / expected
    note: str = ""


@dataclass(frozen=True)
class BenchComparison:
    """Every verdict plus the machine-speed ratio that produced them."""

    verdicts: Tuple[WorkloadVerdict, ...]
    speed_ratio: float  # baseline_score / fresh_score (>1: fresh machine slower)
    tolerance: float

    @property
    def regressions(self) -> Tuple[WorkloadVerdict, ...]:
        return tuple(v for v in self.verdicts if v.status == "regressed")

    @property
    def ok(self) -> bool:
        """True when no compared workload regressed (skips don't fail)."""
        return not self.regressions


def _score(document: Mapping[str, Any]) -> float:
    return float(document["calibration"]["score"])


def compare_bench(
    fresh: Mapping[str, Any],
    baseline: Mapping[str, Any],
    tolerance: float = DEFAULT_TOLERANCE,
) -> BenchComparison:
    """Gate ``fresh`` against ``baseline`` (both already validated).

    ``tolerance`` must be non-negative; the comparison never mutates
    either document.
    """
    if tolerance < 0:
        raise ValueError(f"tolerance must be >= 0, got {tolerance}")
    # scores are ops/second: slower fresh machine => smaller fresh score
    # => ratio > 1 => baseline times are scaled *up* before comparing.
    speed_ratio = _score(baseline) / _score(fresh)
    verdicts: List[WorkloadVerdict] = []
    fresh_workloads = fresh["workloads"]
    base_workloads = baseline["workloads"]
    for name, record in fresh_workloads.items():
        if name not in base_workloads:
            verdicts.append(WorkloadVerdict(
                name=name, status="skipped", fresh=record["wall_clock"],
                note="not in baseline (new workload)",
            ))
            continue
        base = float(base_workloads[name]["wall_clock"])
        measured = float(record["wall_clock"])
        expected = base * speed_ratio
        ratio = measured / expected if expected > 0 else float("inf")
        if ratio > 1 + tolerance:
            status = "regressed"
            note = (f"{ratio:.2f}x the machine-normalized baseline "
                    f"(limit {1 + tolerance:.2f}x)")
        elif ratio < 1 / (1 + tolerance):
            status = "improved"
            note = f"{1 / ratio:.2f}x faster than the normalized baseline"
        else:
            status = "ok"
            note = ""
        verdicts.append(WorkloadVerdict(
            name=name, status=status, baseline=base, expected=expected,
            fresh=measured, ratio=ratio, note=note,
        ))
    for name in base_workloads:
        if name not in fresh_workloads:
            verdicts.append(WorkloadVerdict(
                name=name, status="skipped",
                baseline=float(base_workloads[name]["wall_clock"]),
                note="not measured in this run (different profile)",
            ))
    return BenchComparison(
        verdicts=tuple(verdicts), speed_ratio=speed_ratio, tolerance=tolerance,
    )


def render_comparison(comparison: BenchComparison) -> str:
    """The gate's human-readable verdict table."""
    lines = [
        f"machine speed ratio (baseline/fresh): {comparison.speed_ratio:.3f}  "
        f"tolerance: +{comparison.tolerance * 100:.0f}%",
        "",
        f"{'workload':<20} {'baseline':>9} {'expected':>9} {'fresh':>9} "
        f"{'ratio':>6}  status",
    ]
    for v in comparison.verdicts:
        if v.status == "skipped":
            lines.append(f"{v.name:<20} {'-':>9} {'-':>9} "
                         f"{(f'{v.fresh:.2f}s' if v.fresh else '-'):>9} "
                         f"{'-':>6}  skipped ({v.note})")
            continue
        lines.append(
            f"{v.name:<20} {v.baseline:>8.2f}s {v.expected:>8.2f}s "
            f"{v.fresh:>8.2f}s {v.ratio:>5.2f}x  {v.status}"
            + (f" ({v.note})" if v.note else "")
        )
    lines.append("")
    lines.append(
        "gate: PASS" if comparison.ok
        else f"gate: FAIL ({len(comparison.regressions)} regression(s))"
    )
    return "\n".join(lines)
