"""Canonical timed scenarios, shared by the bench harness and pytest-bench.

Each function here is one *code path worth guarding*: the raw event-engine
substrate, a full training-iteration simulation, the paper's headline
sweep grids, the strict selfcheck and the NCCL tuner sweep.  The
``repro-experiments bench`` harness (:mod:`repro.perf.harness`) and
``benchmarks/test_sim_throughput.py`` both call these functions, so the
committed ``BENCH_*.json`` trajectory and the pytest-benchmark numbers
time exactly the same code.

Every scenario builds fresh state (its own runner, no persistent store)
so repeated calls measure simulation, not cache hits, and returns a small
JSON-ready dict of meta facts (points simulated, events dispatched) the
harness embeds in the bench record.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.core.config import CommMethodName, SimulationConfig, TrainingConfig
from repro.sim import Environment, Resource

#: Grid used by the reduced ("fast") scenario variants; matches the main
#: driver's ``--fast`` so numbers line up with everyday CLI usage.
FAST_BATCHES = (16,)
FAST_GPUS = (1, 4)


def engine_pingpong(num_processes: int = 50, hops: int = 200) -> Dict[str, float]:
    """Raw event throughput of the discrete-event engine.

    ``num_processes`` generator processes contend for a capacity-2
    resource ``hops`` times each -- pure substrate, no model code.
    """
    env = Environment()
    resource = Resource(env, capacity=2)

    def worker(env):
        for _ in range(hops):
            req = resource.request()
            yield req
            yield env.timeout(0.001)
            resource.release(req)

    for _ in range(num_processes):
        env.process(worker(env))
    env.run()
    return {"sim_now": env.now, "events": float(env.dispatched)}


def training_iteration(
    network: str = "inception-v3",
    batch: int = 16,
    gpus: int = 8,
    comm: CommMethodName = CommMethodName.NCCL,
) -> Dict[str, float]:
    """Cost of simulating one full 8-GPU Inception-v3 iteration."""
    from repro.train import Trainer

    config = TrainingConfig(network, batch, gpus, comm_method=comm)
    sim = SimulationConfig(warmup_iterations=0, measure_iterations=1)
    result = Trainer(config, sim=sim).run()
    return {"iteration_time": result.iteration_time}


def _fresh_runner(jobs: int = 1, invariants: str = "off"):
    """A store-less runner: every point is really simulated."""
    from repro.runner import SweepRunner

    return SweepRunner(jobs=jobs, invariants=invariants)


def paper_grids(fast: bool = True) -> Dict[str, float]:
    """The paper's figure/table sweep grids (Fig. 3/4/5, Tables II/III).

    One shared runner per call, exactly like ``repro-experiments all``:
    later grids hit the in-process memo where configurations overlap, so
    the scenario times the real mixed simulate/memoize workload.
    """
    from repro.experiments import (
        fig3_training_time,
        fig4_breakdown,
        fig5_weak_scaling,
        table2_nccl_overhead,
        table3_sync_overhead,
    )

    grid = dict(batch_sizes=FAST_BATCHES, gpu_counts=FAST_GPUS) if fast else {}
    t2 = dict(batch_sizes=FAST_BATCHES) if fast else {}
    runner = _fresh_runner()
    specs = [
        fig3_training_time.sweep_spec(**grid),
        fig4_breakdown.sweep_spec(**grid),
        fig5_weak_scaling.sweep_spec(**grid),
        table2_nccl_overhead.sweep_spec(**t2),
        table3_sync_overhead.sweep_spec(**grid),
    ]
    points = 0
    for spec in specs:
        points += len(runner.run(spec))
    return {
        "points": float(points),
        "simulated": float(runner.stats.executed),
        "memoized": float(runner.stats.memory_hits),
    }


def selfcheck_strict(fast: bool = True) -> Dict[str, float]:
    """The strict-invariant selfcheck sweeps (213 points at full size).

    Times the same specs ``repro-experiments selfcheck`` runs -- the
    headline grids plus tuner-mode and fault-injected points -- under
    ``strict`` enforcement, which is the checker-heavy worst case for
    payload construction.
    """
    from repro.experiments.selfcheck import _specs

    runner = _fresh_runner(invariants="strict")
    points = 0
    checked = 0
    for spec in _specs(fast):
        points += len(runner.run(spec))
    checked = sum(entry[0] for entry in runner.check_stats.values())
    return {
        "points": float(points),
        "simulated": float(runner.stats.executed),
        "checks": float(checked),
    }


def strategy_matrix(fast: bool = True) -> Dict[str, float]:
    """The training-strategy matrix (every registered strategy x network).

    Times the ``strategies`` experiment -- one point per (network,
    strategy) pair through the registry dispatch path -- so the bench
    trajectory tracks the overhead of the strategy abstraction itself:
    a regression here that does not show in ``grids-fast`` points at the
    registry, not the engine.
    """
    from repro.experiments import strategies

    kwargs = (
        dict(networks=("lenet", "alexnet"), batch_size=FAST_BATCHES[0])
        if fast else {}
    )
    runner = _fresh_runner()
    result = strategies.run(runner=runner, **kwargs)
    return {
        "rows": float(len(result.rows)),
        "simulated": float(runner.stats.executed),
    }


def cluster_scaling_sweep(fast: bool = True) -> Dict[str, float]:
    """The hierarchical cluster tier (rail fabric + analytic fast path).

    Times the ``cluster`` experiment grid: event-fidelity points at small
    node counts plus the analytic 128-chassis (1024-GPU) point, which is
    the representative-node fast path's reason to exist -- a per-chunk
    event simulation at that scale would take minutes, the closed form
    milliseconds.  The fast variant keeps the 1024-GPU point so the bench
    trajectory guards exactly the scale the tier was built for.
    """
    from repro.experiments import cluster_scaling

    kwargs = (
        dict(networks=("resnet",), node_counts=(1, 2, 128)) if fast else {}
    )
    runner = _fresh_runner()
    result = cluster_scaling.run(runner=runner, **kwargs)
    return {
        "rows": float(len(result.rows)),
        "max_gpus": float(max(r.num_gpus for r in result.rows)),
        "simulated": float(runner.stats.executed),
    }


def service_throughput(fast: bool = True) -> Dict[str, float]:
    """Request throughput of the resilient sweep service.

    Spins up a :class:`~repro.service.SweepService` on an ephemeral port
    (store-less: every miss really simulates) and drives it with
    concurrent clients submitting overlapping small sweeps, so the
    number tracks the full service path -- protocol parsing, admission,
    in-flight dedup, pool execution, response encoding -- not just the
    simulator underneath.  The overlap makes dedup load-bearing: with
    ``clients > 1`` identical points must coalesce, and the meta facts
    record how many did.
    """
    import asyncio
    import json

    from repro.service.protocol import point_to_dict
    from repro.service.server import ServiceConfig, SweepService
    from repro.runner.spec import SweepPoint

    clients = 3 if fast else 4
    batches = (16, 32) if fast else (16, 32, 64)
    points = [
        point_to_dict(SweepPoint.make(
            TrainingConfig("lenet", batch, gpus, comm_method=CommMethodName.P2P)
        ))
        for batch in batches
        for gpus in (1, 2)
    ]

    async def drive() -> Dict[str, float]:
        service = SweepService(ServiceConfig(
            jobs=2, cache_dir=None,
            sim=SimulationConfig(warmup_iterations=0, measure_iterations=1),
        ))
        await service.start()
        assert service.port is not None

        async def one_client(name: str) -> int:
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", service.port)
            request = {"op": "sweep", "client": name, "points": points}
            writer.write((json.dumps(request) + "\n").encode())
            await writer.drain()
            line = await reader.readline()
            writer.close()
            response = json.loads(line)
            assert response["status"] == "ok", response
            return len(response["results"])

        served = await asyncio.gather(*(
            one_client(f"bench-{i}") for i in range(clients)))
        stats = service.service_stats()
        # The drain's "journal flushed" stderr line is operator-facing
        # noise in a timed loop; swallow it for the bench record.
        import contextlib
        import io

        with contextlib.redirect_stderr(io.StringIO()):
            service.request_drain()
            assert service._stopped is not None
            await service._stopped.wait()
        return {
            "requests": float(clients),
            "points": float(sum(served)),
            "simulated": stats["points_executed"],
            "deduped": stats["points_deduped"],
        }

    return asyncio.run(drive())


def nccl_tuner_sweep(
    fast: bool = True, networks: Optional[Sequence[str]] = None
) -> Dict[str, float]:
    """The NCCL algorithm/protocol ablation (tuner selection + training).

    The selection table scans the pure cost model over 256 B..256 MiB;
    the end-to-end sweep trains every pinned (algorithm, protocol) combo
    plus ``auto`` through the tuner path -- the allocation-heavy chunk
    pipelining ROADMAP item 1 targets.
    """
    from repro.experiments import nccl_ablation

    if networks is None:
        networks = ("alexnet",) if fast else ("alexnet", "resnet")
    runner = _fresh_runner()
    result = nccl_ablation.run(runner=runner, networks=tuple(networks))
    return {
        "selection_rows": float(len(result.selection)),
        "epoch_rows": float(len(result.epochs)),
        "simulated": float(runner.stats.executed),
    }
