"""The bench harness: timed canonical workloads and the BENCH_*.json format.

``repro-experiments bench`` drives :func:`run_harness` over the registered
:class:`BenchWorkload` set -- the strict selfcheck, the paper's figure and
table grids, the NCCL tuner sweep, plus the engine microbenchmarks -- with
warmup/repeat/min-of-N discipline, and writes a schema-versioned JSON
document that is committed to the repository (``BENCH_6.json`` for PR 6)
as the start of the per-PR performance trajectory.

Each workload runs with the module profiler (:data:`repro.perf.spans.PERF`)
enabled, so the record carries a per-span wall-clock breakdown alongside
the headline number.  The headline is the **minimum** over repeats: the
simulator is deterministic, so the minimum is the least-noise estimate of
the code's true cost (the same discipline ``perf stat -r`` and
pytest-benchmark use).

The document also embeds a machine fingerprint and a pure-Python
*calibration score* (operations/second of a fixed loop) so the regression
gate (:mod:`repro.perf.gate`) can compare runs from different machines by
normalizing against relative machine speed.
"""

from __future__ import annotations

import json
import os
import pathlib
import platform
import sys
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

from repro.core.errors import ReproError
from repro.perf.spans import PERF, PerfProfiler

#: Version stamp of the BENCH_*.json document format.  Bump on any
#: structural change; the gate refuses to compare across versions.
BENCH_SCHEMA_VERSION = 1

#: Workload profiles: ``fast`` entries are CI-sized, ``full`` entries are
#: the canonical paper-scale runs.  ``repro-experiments bench --profile
#: all`` records both, which is how the committed baseline is generated.
PROFILES = ("fast", "full")


class BenchValidationError(ReproError):
    """A BENCH_*.json document failed schema validation."""


@dataclass(frozen=True)
class BenchWorkload:
    """One named, registered bench workload.

    ``fn`` runs the workload once and returns a JSON-ready meta dict
    (counts worth recording: points simulated, rows produced).  ``repeats``
    is the number of *timed* runs (the minimum is reported); ``warmup``
    runs are executed first and discarded.
    """

    name: str
    profile: str
    fn: Callable[[], Mapping[str, float]]
    repeats: int = 3
    warmup: int = 1
    description: str = ""


_REGISTRY: Dict[str, BenchWorkload] = {}


def register_workload(workload: BenchWorkload) -> BenchWorkload:
    """Add a workload to the harness registry (name must be unique)."""
    if workload.profile not in PROFILES:
        raise BenchValidationError(
            f"workload {workload.name!r} has unknown profile "
            f"{workload.profile!r}; expected one of {PROFILES}"
        )
    if workload.name in _REGISTRY:
        raise BenchValidationError(
            f"bench workload {workload.name!r} is already registered"
        )
    _REGISTRY[workload.name] = workload
    return workload


def all_workloads() -> Tuple[BenchWorkload, ...]:
    """Every registered workload, in registration order."""
    _ensure_default_workloads()
    return tuple(_REGISTRY.values())


def workloads_for_profile(profile: str) -> Tuple[BenchWorkload, ...]:
    """The workloads selected by ``--profile fast|full|all``."""
    if profile == "all":
        return all_workloads()
    if profile not in PROFILES:
        raise BenchValidationError(
            f"unknown bench profile {profile!r}; expected "
            f"{PROFILES + ('all',)}"
        )
    return tuple(w for w in all_workloads() if w.profile == profile)


_DEFAULTS_LOADED = False


def _ensure_default_workloads() -> None:
    """Register the canonical workload set exactly once (lazy: scenario
    imports pull in the experiments package)."""
    global _DEFAULTS_LOADED
    if _DEFAULTS_LOADED:
        return
    _DEFAULTS_LOADED = True
    from repro.perf import scenarios

    for workload in (
        BenchWorkload(
            name="engine-pingpong", profile="fast", repeats=5, warmup=1,
            fn=scenarios.engine_pingpong,
            description="raw event-engine throughput (50 procs x 200 hops)",
        ),
        BenchWorkload(
            name="train-iteration", profile="fast", repeats=3, warmup=1,
            fn=scenarios.training_iteration,
            description="one 8-GPU Inception-v3 NCCL iteration",
        ),
        BenchWorkload(
            name="grids-fast", profile="fast", repeats=3, warmup=1,
            fn=lambda: scenarios.paper_grids(fast=True),
            description="Fig. 3/4/5 + Table II/III grids at --fast size",
        ),
        BenchWorkload(
            name="selfcheck-fast", profile="fast", repeats=3, warmup=1,
            fn=lambda: scenarios.selfcheck_strict(fast=True),
            description="strict selfcheck sweeps at --fast size",
        ),
        BenchWorkload(
            name="nccl-tuner-fast", profile="fast", repeats=3, warmup=1,
            fn=lambda: scenarios.nccl_tuner_sweep(fast=True),
            description="NCCL tuner selection scan + 1-network combo sweep",
        ),
        BenchWorkload(
            name="strategies-fast", profile="fast", repeats=3, warmup=1,
            fn=lambda: scenarios.strategy_matrix(fast=True),
            description="the 7-strategy registry matrix on 2 networks",
        ),
        BenchWorkload(
            name="cluster-fast", profile="fast", repeats=3, warmup=1,
            fn=lambda: scenarios.cluster_scaling_sweep(fast=True),
            description="hierarchical cluster tier: 1/2 nodes at event "
                        "fidelity + the analytic 1024-GPU point",
        ),
        BenchWorkload(
            name="service-fast", profile="fast", repeats=3, warmup=1,
            fn=lambda: scenarios.service_throughput(fast=True),
            description="sweep service: 3 concurrent clients, overlapping "
                        "points through admission/dedup/pool",
        ),
        BenchWorkload(
            name="grids-full", profile="full", repeats=1, warmup=0,
            fn=lambda: scenarios.paper_grids(fast=False),
            description="Fig. 3/4/5 + Table II/III grids at paper scale",
        ),
        BenchWorkload(
            name="selfcheck-full", profile="full", repeats=1, warmup=0,
            fn=lambda: scenarios.selfcheck_strict(fast=False),
            description="the 213-point strict selfcheck at paper scale",
        ),
        BenchWorkload(
            name="nccl-tuner-full", profile="full", repeats=1, warmup=0,
            fn=lambda: scenarios.nccl_tuner_sweep(fast=False),
            description="NCCL tuner selection scan + 2-network combo sweep",
        ),
        BenchWorkload(
            name="strategies-full", profile="full", repeats=1, warmup=0,
            fn=lambda: scenarios.strategy_matrix(fast=False),
            description="the 7-strategy matrix over the paper's 5 networks",
        ),
        BenchWorkload(
            name="cluster-full", profile="full", repeats=1, warmup=0,
            fn=lambda: scenarios.cluster_scaling_sweep(fast=False),
            description="the full cluster grid: 5 networks x 8..1024 GPUs",
        ),
        BenchWorkload(
            name="service-full", profile="full", repeats=1, warmup=0,
            fn=lambda: scenarios.service_throughput(fast=False),
            description="sweep service: 4 concurrent clients over the "
                        "3-batch x 2-GPU overlapping grid",
        ),
    ):
        register_workload(workload)


# ----------------------------------------------------------------------
# Machine fingerprint and calibration
# ----------------------------------------------------------------------
def machine_fingerprint() -> Dict[str, Any]:
    """Where this bench ran: platform, interpreter, core count."""
    return {
        "platform": platform.platform(),
        "machine": platform.machine(),
        "python": sys.version.split()[0],
        "implementation": platform.python_implementation(),
        "cpus": os.cpu_count() or 1,
    }


#: Work size of one calibration pass; sized for ~30-60 ms on 2020s CPUs
#: (large enough to swamp timer resolution, small enough to repeat).
_CALIBRATION_OPS = 200_000


def _calibration_pass() -> float:
    """Seconds for one pass of the fixed pure-Python reference loop.

    Exercises the interpreter operations the simulator leans on --
    integer arithmetic, attribute-free function calls, list append and a
    dict round-trip -- so the score tracks how fast *this interpreter on
    this machine* runs simulator-shaped code.
    """
    start = time.perf_counter()
    total = 0
    items: List[int] = []
    table: Dict[int, int] = {}
    for i in range(_CALIBRATION_OPS):
        total += i * 3 % 7
        items.append(i)
        if i & 1023 == 0:
            items.clear()
        table[i & 255] = i
    _ = total, len(items), len(table)
    return time.perf_counter() - start


def calibration_score(repeats: int = 5) -> Dict[str, Any]:
    """Machine-speed score: reference-loop operations per second.

    The best (minimum-time) pass defines the score, mirroring the
    min-of-N discipline of the workloads it normalizes.
    """
    samples = [_calibration_pass() for _ in range(repeats)]
    best = min(samples)
    return {
        "ops": _CALIBRATION_OPS,
        "samples": [round(s, 6) for s in samples],
        "score": round(_CALIBRATION_OPS / best, 1),
    }


# ----------------------------------------------------------------------
# Harness execution
# ----------------------------------------------------------------------
def _time_workload(
    workload: BenchWorkload, repeats: Optional[int], perf: PerfProfiler
) -> Dict[str, Any]:
    """Run one workload with warmup/repeat/min-of-N discipline.

    The span/counter breakdown reported is the one captured during the
    *fastest* repeat, so breakdown and headline describe the same run.
    """
    runs = max(1, repeats if repeats is not None else workload.repeats)
    for _ in range(workload.warmup):
        workload.fn()
    samples: List[float] = []
    best: Optional[Tuple[float, Dict, Dict, Mapping]] = None
    for _ in range(runs):
        perf.reset()
        perf.enable()
        start = time.perf_counter()
        try:
            meta = workload.fn() or {}
        finally:
            elapsed = time.perf_counter() - start
            perf.disable()
        samples.append(elapsed)
        if best is None or elapsed < best[0]:
            best = (elapsed, perf.spans_dict(), perf.counters_dict(), meta)
    elapsed, spans, counters, meta = best

    def _quantize(seconds: float) -> float:
        # 1 µs floor: a sub-microsecond sample must not round to the 0.0
        # that validation (rightly) rejects as a non-positive wall-clock.
        return max(round(seconds, 6), 1e-6)

    return {
        "profile": workload.profile,
        "description": workload.description,
        "repeats": runs,
        "warmup": workload.warmup,
        "samples": [_quantize(s) for s in samples],
        "wall_clock": _quantize(elapsed),
        "spans": spans,
        "counters": counters,
        "meta": {k: meta[k] for k in sorted(meta)},
    }


def run_harness(
    profile: str = "fast",
    repeats: Optional[int] = None,
    perf: Optional[PerfProfiler] = None,
    progress: Optional[Callable[[str, Dict[str, Any]], None]] = None,
) -> Dict[str, Any]:
    """Time every workload of ``profile`` and assemble the bench document.

    ``repeats`` overrides each workload's repeat count (CI smoke uses a
    lower one); ``progress(name, record)`` is called after each workload,
    letting the CLI stream results as they land.  The module profiler is
    used unless an explicit ``perf`` instance is passed (tests isolate
    themselves this way); its prior enabled state is restored afterwards.
    """
    perf = perf if perf is not None else PERF
    was_enabled = perf.enabled
    workloads = workloads_for_profile(profile)
    document: Dict[str, Any] = {
        "schema": BENCH_SCHEMA_VERSION,
        "generated": time.strftime("%Y-%m-%dT%H:%M:%S", time.gmtime()) + "Z",
        "profile": profile,
        "machine": machine_fingerprint(),
        "calibration": calibration_score(),
        "workloads": {},
    }
    try:
        for workload in workloads:
            record = _time_workload(workload, repeats, perf)
            document["workloads"][workload.name] = record
            if progress is not None:
                progress(workload.name, record)
    finally:
        perf.reset()
        perf.enabled = was_enabled
    return document


# ----------------------------------------------------------------------
# Serialization and validation
# ----------------------------------------------------------------------
def write_bench(path: os.PathLike, document: Mapping[str, Any]) -> pathlib.Path:
    """Validate and write one bench document (trailing newline, sorted keys
    off -- workload order is meaningful)."""
    validate_bench(document)
    target = pathlib.Path(path)
    target.write_text(json.dumps(document, indent=2) + "\n")
    return target


def load_bench(path: os.PathLike) -> Dict[str, Any]:
    """Read and validate one bench document."""
    target = pathlib.Path(path)
    try:
        document = json.loads(target.read_text())
    except OSError as exc:
        raise BenchValidationError(f"cannot read {target}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise BenchValidationError(f"{target} is not valid JSON: {exc}") from exc
    try:
        validate_bench(document)
    except BenchValidationError as exc:
        raise BenchValidationError(f"{target}: {exc}") from exc
    return document


def validate_bench(document: Any) -> None:
    """Raise :class:`BenchValidationError` listing every schema problem."""
    problems: List[str] = []
    if not isinstance(document, dict):
        raise BenchValidationError(
            f"bench document must be an object, got {type(document).__name__}"
        )
    if document.get("schema") != BENCH_SCHEMA_VERSION:
        problems.append(
            f"schema is {document.get('schema')!r}, expected "
            f"{BENCH_SCHEMA_VERSION}"
        )
    for key in ("machine", "calibration", "workloads"):
        if not isinstance(document.get(key), dict):
            problems.append(f"missing or non-object {key!r} section")
    calibration = document.get("calibration")
    if isinstance(calibration, dict):
        score = calibration.get("score")
        if not isinstance(score, (int, float)) or score <= 0:
            problems.append("calibration.score must be a positive number")
    workloads = document.get("workloads")
    if isinstance(workloads, dict):
        if not workloads:
            problems.append("workloads section is empty")
        for name, record in workloads.items():
            problems.extend(_validate_workload(name, record))
    if problems:
        raise BenchValidationError("; ".join(problems))


def _validate_workload(name: str, record: Any) -> List[str]:
    problems: List[str] = []
    if not isinstance(record, dict):
        return [f"workload {name!r} must be an object"]
    wall = record.get("wall_clock")
    if not isinstance(wall, (int, float)) or wall <= 0:
        problems.append(f"workload {name!r}: wall_clock must be positive")
    samples = record.get("samples")
    if (not isinstance(samples, list) or not samples
            or not all(isinstance(s, (int, float)) and s > 0 for s in samples)):
        problems.append(
            f"workload {name!r}: samples must be a non-empty list of "
            f"positive numbers"
        )
    elif isinstance(wall, (int, float)) and wall > min(samples) + 1e-9:
        problems.append(
            f"workload {name!r}: wall_clock {wall} exceeds the fastest "
            f"sample {min(samples)} (must be min-of-N)"
        )
    if record.get("profile") not in PROFILES:
        problems.append(
            f"workload {name!r}: profile must be one of {PROFILES}"
        )
    for key in ("spans", "counters", "meta"):
        if not isinstance(record.get(key), dict):
            problems.append(f"workload {name!r}: missing {key!r} object")
    spans = record.get("spans")
    if isinstance(spans, dict):
        for path, agg in spans.items():
            if (not isinstance(agg, dict)
                    or not isinstance(agg.get("calls"), (int, float))
                    or not isinstance(agg.get("total"), (int, float))):
                problems.append(
                    f"workload {name!r}: span {path!r} needs calls/total"
                )
    return problems
