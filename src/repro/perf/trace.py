"""Chrome-trace export of simulator self-time.

Reuses the PR 1 trace conventions (:mod:`repro.profile.timeline`) but on a
dedicated process lane, so a perf trace can stand alone *or* ride in the
same file as a simulated-run trace without colliding with the simulated
GPU/fabric/stage lanes.  Spans are emitted as duration ("X") events on one
wall-clock lane; Perfetto nests them by time containment, which matches
the span stack exactly because spans close LIFO.
"""

from __future__ import annotations

import json
from typing import IO, List

from repro.perf.spans import PerfProfiler

#: Process lane for simulator self-time, kept clear of the simulated
#: Host/GPU/Fabric/Stages lanes (pids 0-3 in repro.profile.timeline,
#: whose ``_PID_SELF`` mirrors this value).
PID_SELF = 4

_US = 1e6  # trace events are quoted in microseconds


def _metadata(pid: int, name: str, tid: int = None) -> dict:
    """A process_name/thread_name metadata event (timeline conventions)."""
    event = {
        "name": "thread_name" if tid is not None else "process_name",
        "ph": "M",
        "pid": pid,
        "args": {"name": name},
    }
    if tid is not None:
        event["tid"] = tid
    return event


def perf_chrome_trace_events(perf: PerfProfiler) -> List[dict]:
    """Metadata plus duration events for every recorded span.

    Span timestamps are rebased to the earliest recorded span so the
    trace starts at t=0 regardless of the process's ``perf_counter``
    epoch.  Counters are attached to the process metadata so they travel
    with the trace.
    """
    events: List[dict] = [
        _metadata(PID_SELF, "Simulator self-time"),
        _metadata(PID_SELF, "wall clock", tid=0),
    ]
    if not perf.records:
        return events
    epoch = min(record.start for record in perf.records)
    for record in perf.records:
        events.append(
            {
                "name": record.name,
                "cat": "perf",
                "ph": "X",
                "ts": (record.start - epoch) * _US,
                "dur": record.duration * _US,
                "pid": PID_SELF,
                "tid": 0,
                "args": {"path": record.path, "depth": record.depth},
            }
        )
    return events


def export_perf_chrome_trace(perf: PerfProfiler, fp: IO[str]) -> None:
    """Write a standalone self-time trace (open in ui.perfetto.dev)."""
    trace = {
        "traceEvents": perf_chrome_trace_events(perf),
        "displayTimeUnit": "ms",
    }
    if perf.counters:
        trace["metadata"] = {"perf_counters": perf.counters_dict()}
    json.dump(trace, fp)
