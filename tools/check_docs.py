#!/usr/bin/env python3
"""Documentation gate: link check + executable doc examples + coverage.

Four checks over README.md and docs/*.md, all run by the CI docs job:

1. **Relative links resolve.**  Every markdown link or inline-code
   reference to a repository path (``[text](docs/COMM.md)``,
   ```` `docs/RUNNER.md` ````) must point at an existing file or
   directory.  External ``http(s)://`` and anchor-only links are
   skipped.
2. **Fenced examples execute.**  Every ```` ```python ```` block whose
   body contains a ``>>>`` prompt is run through :mod:`doctest`, so the
   documented behaviour is re-verified on every commit.  Blocks without
   prompts are narrative and only checked for links.
3. **Every subsystem is documented.**  Each ``src/repro/<pkg>``
   subpackage must appear (as ``repro.<pkg>``) in README.md's
   Documentation index, so adding a package without a docs pointer
   fails the gate.
4. **The CLI reference matches the CLI.**  The fenced block following
   the ``<!-- cli-subcommands -->`` marker in docs/API.md must list
   exactly ``repro.experiments.cli.all_subcommands()`` (requires
   ``PYTHONPATH=src``), so the documented vocabulary cannot drift from
   the parser.

Exit status is non-zero on any failure.

Usage::

    PYTHONPATH=src python tools/check_docs.py [file.md ...]
"""

from __future__ import annotations

import doctest
import pathlib
import re
import sys
from typing import Iterable, List, Tuple

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

#: ``[text](target)`` markdown links.
MD_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
#: Inline code spans that look like repo-relative paths to checked docs.
CODE_PATH = re.compile(r"`((?:docs|examples|tools|src|tests|benchmarks)/[\w./-]+|"
                       r"[A-Z][A-Z_]+\.md)`")
#: Fenced code blocks: ```lang\n ... \n```
FENCE = re.compile(r"^```(\w*)\n(.*?)^```", re.MULTILINE | re.DOTALL)


def default_files() -> List[pathlib.Path]:
    files = [REPO_ROOT / "README.md"]
    files.extend(sorted((REPO_ROOT / "docs").glob("*.md")))
    return files


def iter_link_targets(text: str) -> Iterable[str]:
    for match in MD_LINK.finditer(text):
        yield match.group(1)
    for match in CODE_PATH.finditer(text):
        yield match.group(1)


def check_links(path: pathlib.Path, text: str) -> List[str]:
    problems = []
    for target in iter_link_targets(text):
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        relative = target.split("#", 1)[0]
        if not relative:
            continue
        resolved = (path.parent / relative).resolve()
        in_repo = (REPO_ROOT / relative).resolve()
        if not (resolved.exists() or in_repo.exists()):
            problems.append(f"{path.relative_to(REPO_ROOT)}: broken link -> {target}")
    return problems


def doctest_blocks(path: pathlib.Path, text: str) -> Tuple[int, List[str]]:
    """Run every ``>>>``-bearing python fence; returns (blocks_run, problems)."""
    problems = []
    run = 0
    parser = doctest.DocTestParser()
    runner = doctest.DocTestRunner(verbose=False, optionflags=doctest.ELLIPSIS)
    for index, match in enumerate(FENCE.finditer(text)):
        lang, body = match.group(1), match.group(2)
        if lang != "python" or ">>>" not in body:
            continue
        run += 1
        name = f"{path.name}[block {index}]"
        test = parser.get_doctest(body, {}, name, str(path), 0)
        result = runner.run(test, clear_globs=True)
        if result.failed:
            problems.append(
                f"{path.relative_to(REPO_ROOT)}: {result.failed} doctest "
                f"failure(s) in fenced block {index}"
            )
    return run, problems


def check_subsystem_index() -> List[str]:
    """Every ``src/repro/*`` subpackage appears in README's docs index."""
    readme = (REPO_ROOT / "README.md").read_text()
    problems = []
    for init in sorted((REPO_ROOT / "src" / "repro").glob("*/__init__.py")):
        package = f"repro.{init.parent.name}"
        if f"`{package}`" not in readme:
            problems.append(
                f"README.md: subpackage {package} missing from the "
                f"Documentation index"
            )
    return problems


def check_cli_reference() -> List[str]:
    """docs/API.md's marked CLI block matches ``all_subcommands()``."""
    text = (REPO_ROOT / "docs" / "API.md").read_text()
    marker = "<!-- cli-subcommands -->"
    at = text.find(marker)
    if at < 0:
        return [f"docs/API.md: missing the {marker} marker"]
    fence = FENCE.search(text, at)
    if fence is None:
        return [f"docs/API.md: no fenced block after the {marker} marker"]
    documented = set(fence.group(2).split())
    sys.path.insert(0, str(REPO_ROOT / "src"))
    try:
        from repro.experiments.cli import all_subcommands
    except ImportError as exc:  # pragma: no cover - needs PYTHONPATH=src
        return [f"docs/API.md: cannot import repro to verify CLI list ({exc})"]
    actual = set(all_subcommands())
    problems = []
    for name in sorted(actual - documented):
        problems.append(f"docs/API.md: CLI subcommand {name!r} undocumented")
    for name in sorted(documented - actual):
        problems.append(
            f"docs/API.md: documented subcommand {name!r} does not exist"
        )
    return problems


def main(argv: List[str]) -> int:
    files = [pathlib.Path(a).resolve() for a in argv] or default_files()
    problems: List[str] = []
    total_blocks = 0
    for path in files:
        text = path.read_text()
        problems.extend(check_links(path, text))
        run, block_problems = doctest_blocks(path, text)
        total_blocks += run
        problems.extend(block_problems)
        status = "FAIL" if block_problems else "ok"
        print(f"{path.relative_to(REPO_ROOT)}: {run} doctest block(s) [{status}]")
    if not argv:  # repo-wide coverage checks only on the default file set
        problems.extend(check_subsystem_index())
        problems.extend(check_cli_reference())
    if problems:
        print()
        for problem in problems:
            print(f"ERROR: {problem}")
        return 1
    print(f"\nall links resolve, {total_blocks} doctest block(s) pass, "
          f"docs index and CLI reference complete")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
