"""Calibration harness: prints the paper anchors next to simulated values.

Run after any change to ``repro.core.constants`` to confirm the anchors in
DESIGN.md section 4 still hold.  This is a development tool; the benchmark
suite asserts the same shapes programmatically.
"""

from __future__ import annotations

import argparse
import time

from repro import CommMethodName, SimulationConfig, TrainingConfig, train


def lenet_scaling() -> None:
    print("== A1/A2: LeNet b16 speedups (paper P2P 1.62/2.37/3.36, NCCL 1.56/2.27/2.77)")
    for method in (CommMethodName.P2P, CommMethodName.NCCL):
        base = None
        row = []
        for n in (1, 2, 4, 8):
            r = train(TrainingConfig("lenet", 16, n, comm_method=method))
            if base is None:
                base = r
            row.append(f"g{n}:{r.speedup_over(base):.2f} (iter {r.iteration_time*1e3:.2f}ms)")
        print(f"  {method.value:4s}: " + "  ".join(row))


def nccl_single_gpu_overhead() -> None:
    print("== A3: single-GPU NCCL overhead %% (paper: lenet ~21.8%% @b16, rising with b for small nets)")
    for net in ("lenet", "alexnet", "resnet", "googlenet", "inception-v3"):
        row = []
        for b in (16, 32, 64):
            p = train(TrainingConfig(net, b, 1, comm_method=CommMethodName.P2P))
            n = train(TrainingConfig(net, b, 1, comm_method=CommMethodName.NCCL))
            row.append(f"b{b}:{100*(n.epoch_time/p.epoch_time - 1):6.2f}%")
        print(f"  {net:13s} " + "  ".join(row))


def big_net_advantage() -> None:
    print("== A4/A5: NCCL advantage = p2p_epoch/nccl_epoch @b16"
          " (paper: googlenet 1.1/1.2 @g4/g8; resnet,inception 1.1/1.25; alexnet & lenet <= 1.0)")
    for net in ("lenet", "alexnet", "resnet", "googlenet", "inception-v3"):
        row = []
        for n in (2, 4, 8):
            p = train(TrainingConfig(net, 16, n, comm_method=CommMethodName.P2P))
            c = train(TrainingConfig(net, 16, n, comm_method=CommMethodName.NCCL))
            row.append(f"g{n}:{p.epoch_time/c.epoch_time:5.2f}")
        print(f"  {net:13s} " + "  ".join(row))


def batch_scaling() -> None:
    print("== A6: LeNet g4 P2P batch scaling (paper: x1.92 @b32, x3.67 @b64)")
    base = train(TrainingConfig("lenet", 16, 4, comm_method=CommMethodName.P2P))
    for b in (32, 64):
        r = train(TrainingConfig("lenet", b, 4, comm_method=CommMethodName.P2P))
        print(f"  b{b}: x{base.epoch_time / r.epoch_time:.2f}")


def two_gpu_speedup() -> None:
    print("== A7: 1->2 GPU speedup @b16 (paper: up to ~1.8 for all workloads)")
    for method in (CommMethodName.P2P, CommMethodName.NCCL):
        row = []
        for net in ("lenet", "alexnet", "resnet", "googlenet", "inception-v3"):
            r1 = train(TrainingConfig(net, 16, 1, comm_method=method))
            r2 = train(TrainingConfig(net, 16, 2, comm_method=method))
            row.append(f"{net}:{r2.speedup_over(r1):.2f}")
        print(f"  {method.value:4s}: " + "  ".join(row))


def fp_bp_wu_scaling() -> None:
    print("== A8/A9: NCCL stage scaling @b16 (paper: inception fp+bp near-linear;"
          " wu linear only for alexnet)")
    for net in ("lenet", "alexnet", "resnet", "googlenet", "inception-v3"):
        rows = []
        for n in (2, 4, 8):
            r = train(TrainingConfig(net, 16, n, comm_method=CommMethodName.NCCL))
            rows.append((n, r.epoch_fp_bp_time, r.epoch_wu_time))
        base_n, base_fpbp, base_wu = rows[0]
        desc = []
        for n, fpbp, wu in rows:
            s_fpbp = base_fpbp * base_n / (fpbp * n) * (n / base_n)
            desc.append(
                f"g{n}: fp+bp {fpbp:7.1f}s (x{base_fpbp/fpbp:4.2f}) wu {wu:6.1f}s"
                f" (x{(base_wu/wu) if wu else float('nan'):4.2f})"
            )
        print(f"  {net:13s} " + " | ".join(desc))


SECTIONS = {
    "lenet": lenet_scaling,
    "table2": nccl_single_gpu_overhead,
    "advantage": big_net_advantage,
    "batch": batch_scaling,
    "2gpu": two_gpu_speedup,
    "stages": fp_bp_wu_scaling,
}


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("sections", nargs="*", default=list(SECTIONS),
                        help=f"subset of {sorted(SECTIONS)}")
    args = parser.parse_args()
    start = time.time()
    for name in args.sections or SECTIONS:
        SECTIONS[name]()
    print(f"[{time.time() - start:.1f}s]")


if __name__ == "__main__":
    main()
