#!/usr/bin/env python3
"""Bench regression gate: fresh timings vs. the committed baseline.

Two modes, both exiting non-zero on failure:

* ``--validate BENCH.json`` -- schema-check one committed bench document
  without running anything (CI uses this to keep the baseline honest).
* ``--baseline BENCH.json [--fresh RUN.json]`` -- compare a fresh bench
  document against the committed baseline through the noise-aware gate
  (:mod:`repro.perf.gate`): baseline times are rescaled by the embedded
  machine-calibration scores, and only normalized slowdowns beyond
  ``--tolerance`` fail.  Without ``--fresh`` the harness is run in-process
  first (``--profile``/``--repeats`` size that run).

Usage::

    PYTHONPATH=src python tools/check_bench.py --validate BENCH_7.json
    PYTHONPATH=src python tools/check_bench.py --baseline BENCH_7.json \
        --profile fast --tolerance 1.0
"""

from __future__ import annotations

import argparse
import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

try:
    import repro  # noqa: F401
except ImportError:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.perf.gate import DEFAULT_TOLERANCE, compare_bench, render_comparison
from repro.perf.harness import (
    BenchValidationError,
    load_bench,
    run_harness,
    validate_bench,
)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--validate", type=pathlib.Path, default=None,
                        metavar="BENCH",
                        help="only validate this bench document and exit")
    parser.add_argument("--baseline", type=pathlib.Path, default=None,
                        metavar="BENCH",
                        help="committed baseline document to gate against")
    parser.add_argument("--fresh", type=pathlib.Path, default=None,
                        metavar="BENCH",
                        help="pre-recorded fresh document (default: run the "
                             "harness now)")
    parser.add_argument("--profile", default="fast",
                        choices=("fast", "full", "all"),
                        help="harness profile when measuring fresh timings "
                             "(default: fast)")
    parser.add_argument("--repeats", type=int, default=None, metavar="N",
                        help="override workload repeat counts for the fresh "
                             "run")
    parser.add_argument("--tolerance", type=float, default=DEFAULT_TOLERANCE,
                        metavar="FRAC",
                        help="allowed normalized slowdown fraction "
                             f"(default: {DEFAULT_TOLERANCE})")
    args = parser.parse_args(argv)

    try:
        if args.validate is not None:
            document = load_bench(args.validate)
            print(f"{args.validate}: valid bench document "
                  f"({len(document['workloads'])} workload(s), "
                  f"profile {document['profile']})")
            return 0
        if args.baseline is None:
            parser.error("one of --validate or --baseline is required")
        baseline = load_bench(args.baseline)
        if args.fresh is not None:
            fresh = load_bench(args.fresh)
        else:
            print(f"measuring fresh '{args.profile}' timings ...",
                  file=sys.stderr)
            fresh = run_harness(profile=args.profile, repeats=args.repeats)
            validate_bench(fresh)
        comparison = compare_bench(fresh, baseline, tolerance=args.tolerance)
        print(render_comparison(comparison))
        return 0 if comparison.ok else 1
    except BenchValidationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
