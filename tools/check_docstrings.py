#!/usr/bin/env python3
"""Docstring gate: every module and public class in src/repro documents itself.

The library's documentation strategy leans on docstrings (docs/API.md
defers to them for details), so CI enforces the floor: each ``.py`` file
under ``src/repro`` must open with a module docstring, and every public
class (name not starting with ``_``, not nested inside a function) must
carry a class docstring.  Functions are exempt -- small helpers would
drown the signal -- but classes are the API surface.

Usage::

    python tools/check_docstrings.py [root ...]

Exit status is non-zero listing every offender.
"""

from __future__ import annotations

import ast
import pathlib
import sys
from typing import List

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
DEFAULT_ROOT = REPO_ROOT / "src" / "repro"


def check_file(path: pathlib.Path) -> List[str]:
    tree = ast.parse(path.read_text(), filename=str(path))
    rel = path.relative_to(REPO_ROOT)
    problems = []
    if ast.get_docstring(tree) is None:
        problems.append(f"{rel}: missing module docstring")
    for node in ast.walk(tree):
        if not isinstance(node, ast.ClassDef):
            continue
        if node.name.startswith("_"):
            continue
        if ast.get_docstring(node) is None:
            problems.append(
                f"{rel}:{node.lineno}: class {node.name} missing docstring"
            )
    return problems


def main(argv: List[str]) -> int:
    roots = [pathlib.Path(a).resolve() for a in argv] or [DEFAULT_ROOT]
    problems: List[str] = []
    checked = 0
    for root in roots:
        for path in sorted(root.rglob("*.py")):
            checked += 1
            problems.extend(check_file(path))
    if problems:
        for problem in problems:
            print(f"ERROR: {problem}")
        print(f"\n{len(problems)} docstring problem(s) in {checked} file(s)")
        return 1
    print(f"{checked} file(s): all modules and public classes documented")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
