"""Structural tests of the DGX-1 topology against the paper's description."""

import itertools

import pytest

from repro.topology import Router, build_dgx1v
from repro.topology.links import LinkType
from repro.topology.nodes import CpuNode, GpuNode


@pytest.fixture(scope="module")
def topo():
    return build_dgx1v()


@pytest.fixture(scope="module")
def router(topo):
    return Router(topo)


def test_node_inventory(topo):
    assert len(topo.gpus) == 8
    assert len(topo.cpus) == 2
    assert len(topo.nodes) == 14  # + 4 PCIe switches


def test_every_gpu_has_exactly_six_nvlink_ports(topo):
    for gpu in topo.gpus:
        assert topo.nvlink_port_count(gpu) == 6


def test_sixteen_nvlink_connections(topo):
    nvlinks = [l for l in topo.links if l.link_type is LinkType.NVLINK]
    assert len(nvlinks) == 16
    assert sum(l.width for l in nvlinks) == 24  # 8 GPUs x 6 ports / 2


def test_dual_and_single_links_exist(topo):
    widths = {l.width for l in topo.links if l.link_type is LinkType.NVLINK}
    assert widths == {1, 2}


def test_gpu0_has_two_dual_and_two_single_neighbors(topo):
    """The asymmetry the paper exploits: some workers see 2x bandwidth."""
    g0 = topo.gpu(0)
    widths = sorted(
        topo.nvlink_between(g0, n).width for n in topo.nvlink_neighbors(g0)
    )
    assert widths == [1, 1, 2, 2]


def test_some_gpu_pairs_not_directly_connected(topo):
    unconnected = [
        (a, b)
        for a, b in itertools.combinations(range(8), 2)
        if topo.nvlink_between(topo.gpu(a), topo.gpu(b)) is None
    ]
    # 28 pairs, 16 links -> 12 pairs need staging
    assert len(unconnected) == 12


def test_max_two_nvlink_hops_between_any_pair(topo, router):
    for a, b in itertools.combinations(range(8), 2):
        assert router.nvlink_distance(topo.gpu(a), topo.gpu(b)) <= 2


def test_quads_fully_connected(topo):
    """Devices 0-3 (and 4-7) are cliques, so NCCL rings stay on NVLink."""
    for quad in (range(0, 4), range(4, 8)):
        for a, b in itertools.combinations(quad, 2):
            assert topo.nvlink_between(topo.gpu(a), topo.gpu(b)) is not None


def test_dual_link_aggregated_bandwidth(topo):
    dual = topo.nvlink_between(topo.gpu(0), topo.gpu(3))
    single = topo.nvlink_between(topo.gpu(0), topo.gpu(1))
    assert dual.peak_bandwidth() == 2 * single.peak_bandwidth()
    assert single.peak_bandwidth() == 25e9


def test_gpus_split_across_cpu_sockets(topo):
    homes = [topo.home_cpu(topo.gpu(i)).socket for i in range(8)]
    assert homes == [0, 0, 0, 0, 1, 1, 1, 1]


def test_pcie_path_goes_through_switch(topo):
    path = topo.pcie_path(topo.gpu(0))
    assert isinstance(path[0], GpuNode)
    assert isinstance(path[-1], CpuNode)
    assert len(path) == 3  # gpu -> plx -> cpu


def test_qpi_connects_sockets(topo):
    qpi = topo.link_between(topo.cpu(0), topo.cpu(1))
    assert qpi is not None and qpi.link_type is LinkType.QPI


def test_pcie_only_variant_has_no_nvlink():
    topo = build_dgx1v(nvlink=False)
    assert not [l for l in topo.links if l.link_type is LinkType.NVLINK]
    # GPUs are still reachable via the host
    router = Router(topo)
    route = router.gpu_to_gpu(topo.gpu(0), topo.gpu(1))
    assert route.kind.value == "pcie_host"


def test_uniform_width_variant_collapses_duals():
    topo = build_dgx1v(uniform_link_width=1)
    widths = {l.width for l in topo.links if l.link_type is LinkType.NVLINK}
    assert widths == {1}
