"""Tests for the exception hierarchy."""

import pytest

from repro.core.errors import (
    ConfigurationError,
    OutOfMemoryError,
    ReproError,
    RoutingError,
    ShapeError,
    SimulationError,
)


def test_hierarchy():
    for exc in (ConfigurationError, SimulationError, RoutingError,
                OutOfMemoryError, ShapeError):
        assert issubclass(exc, ReproError)


def test_dual_inheritance_for_catchability():
    """Library errors also derive from the matching builtin, so callers
    who catch ValueError/RuntimeError/etc. keep working."""
    assert issubclass(ConfigurationError, ValueError)
    assert issubclass(ShapeError, ValueError)
    assert issubclass(SimulationError, RuntimeError)
    assert issubclass(RoutingError, LookupError)
    assert issubclass(OutOfMemoryError, MemoryError)


def test_oom_message_and_fields():
    err = OutOfMemoryError("Tesla V100", requested=20, free=10)
    assert err.device == "Tesla V100"
    assert err.requested == 20 and err.free == 10
    assert "20 bytes" in str(err)


def test_base_catchable():
    with pytest.raises(ReproError):
        raise OutOfMemoryError("x", 2, 1)
