"""Tests for the modern NCCL AllReduce communicator."""

import pytest

from repro import CommMethodName, SimulationConfig, TrainingConfig, train
from repro.comm import NcclAllReduceCommunicator, make_communicator
from repro.core.constants import CALIBRATION
from repro.dnn.stats import WeightArray
from repro.gpu import GpuDevice, KernelCostModel
from repro.profile import Profiler
from repro.sim import Environment
from repro.topology import Fabric, build_dgx1v

FAST = SimulationConfig(warmup_iterations=1, measure_iterations=2)
ARRAY = WeightArray(0, "w", 2_000_000, "l")


def _make_comm(num_gpus, profiler=None):
    env = Environment()
    topo = build_dgx1v()
    fabric = Fabric(env, topo, CALIBRATION)
    devices = [GpuDevice(env, topo.gpu(i), profiler=profiler) for i in range(num_gpus)]
    comm = NcclAllReduceCommunicator(env, fabric, devices, KernelCostModel(),
                                     CALIBRATION, profiler)
    return env, comm


def test_factory_builds_allreduce():
    env = Environment()
    topo = build_dgx1v()
    fabric = Fabric(env, topo, CALIBRATION)
    devices = [GpuDevice(env, topo.gpu(0))]
    comm = make_communicator("nccl-allreduce", env, fabric, devices,
                             KernelCostModel(), CALIBRATION, None)
    assert isinstance(comm, NcclAllReduceCommunicator)


def test_allreduce_bandwidth_optimal():
    """AllReduce moves 2(N-1)/N * S; Reduce+Broadcast moves 2S."""
    _, comm = _make_comm(8)
    nbytes = 100 * 2**20
    allreduce = comm.allreduce_duration(nbytes)
    old_path = comm.reduce_duration(nbytes) + comm.broadcast_duration(nbytes)
    assert allreduce < old_path


def test_single_collective_per_array():
    profiler = Profiler()
    env, comm = _make_comm(4)
    comm.profiler = profiler
    done = env.process(comm.sync_array(ARRAY))
    env.run(until=done)
    assert len([t for t in profiler.transfers if t.kind == "nccl"]) == 1


def test_update_replicated_on_every_gpu():
    profiler = Profiler()
    env, comm = _make_comm(4, profiler)
    done = env.process(comm.sync_array(ARRAY))
    env.run(until=done)
    updates = [k for k in profiler.kernels if "_update." in k.name]
    assert {k.gpu for k in updates} == {0, 1, 2, 3}


def test_single_gpu_path():
    profiler = Profiler()
    env, comm = _make_comm(1, profiler)
    done = env.process(comm.sync_array(ARRAY))
    env.run(until=done)
    assert any(k.name.startswith("nccl.allreduce") for k in profiler.kernels)


def test_allreduce_beats_reduce_broadcast_end_to_end():
    for net in ("alexnet", "inception-v3"):
        old = train(TrainingConfig(net, 16, 8, comm_method=CommMethodName.NCCL),
                    sim=FAST)
        new = train(TrainingConfig(net, 16, 8,
                                   comm_method=CommMethodName.NCCL_ALLREDUCE),
                    sim=FAST)
        assert new.epoch_time < old.epoch_time, net


def test_allreduce_allowed_multi_node():
    r = train(
        TrainingConfig("resnet", 32, 16,
                       comm_method=CommMethodName.NCCL_ALLREDUCE,
                       cluster_nodes=2),
        sim=FAST,
    )
    assert r.epoch_time > 0
