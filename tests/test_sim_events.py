"""Tests for events, processes and the AllOf/AnyOf combinators."""

import pytest

from repro.core.errors import SimulationError
from repro.sim import AllOf, AnyOf, Environment, Event, Interrupt


# ----------------------------------------------------------------------
# Bare events
# ----------------------------------------------------------------------
def test_event_value_unavailable_until_triggered():
    env = Environment()
    ev = env.event()
    with pytest.raises(SimulationError):
        _ = ev.value
    with pytest.raises(SimulationError):
        _ = ev.ok


def test_event_succeed_carries_value():
    env = Environment()
    ev = env.event()
    ev.succeed(42)
    assert ev.triggered and ev.ok and ev.value == 42


def test_event_double_trigger_is_error():
    env = Environment()
    ev = env.event()
    ev.succeed()
    with pytest.raises(SimulationError):
        ev.succeed()
    with pytest.raises(SimulationError):
        ev.fail(RuntimeError())


def test_event_fail_requires_exception():
    env = Environment()
    with pytest.raises(SimulationError):
        env.event().fail("not an exception")  # type: ignore[arg-type]


# ----------------------------------------------------------------------
# Processes
# ----------------------------------------------------------------------
def test_process_returns_generator_value():
    env = Environment()

    def proc(env):
        yield env.timeout(1.0)
        return 99

    p = env.process(proc(env))
    env.run()
    assert p.value == 99


def test_process_requires_generator():
    env = Environment()
    with pytest.raises(SimulationError):
        env.process(lambda: None)  # type: ignore[arg-type]


def test_process_waits_on_another_process():
    env = Environment()

    def inner(env):
        yield env.timeout(2.0)
        return "inner"

    def outer(env):
        result = yield env.process(inner(env))
        return (env.now, result)

    p = env.process(outer(env))
    env.run()
    assert p.value == (2.0, "inner")


def test_process_sees_exception_from_failed_event():
    env = Environment()
    failing = env.event()

    def proc(env):
        try:
            yield failing
        except RuntimeError as exc:
            return f"caught {exc}"

    p = env.process(proc(env))
    failing.fail(RuntimeError("bad"))
    env.run()
    assert p.value == "caught bad"


def test_process_yielding_non_event_fails():
    env = Environment()

    def proc(env):
        yield 42  # type: ignore[misc]

    p = env.process(proc(env))
    env.run()
    assert p.triggered and not p.ok


def test_yield_already_processed_event_resumes_immediately():
    env = Environment()
    done = env.timeout(1.0)
    env.run()

    def proc(env):
        yield done
        return env.now

    p = env.process(proc(env))
    env.run()
    assert p.value == 1.0  # no extra delay


def test_interrupt_raises_inside_process():
    env = Environment()

    def victim(env):
        try:
            yield env.timeout(100.0)
        except Interrupt as intr:
            return ("interrupted", intr.cause, env.now)

    v = env.process(victim(env))

    def attacker(env, victim):
        yield env.timeout(1.0)
        victim.interrupt("stop")

    env.process(attacker(env, v))
    env.run()
    assert v.value == ("interrupted", "stop", 1.0)


def test_interrupt_on_finished_process_is_noop():
    env = Environment()

    def quick(env):
        yield env.timeout(0.5)

    p = env.process(quick(env))
    env.run()
    p.interrupt()  # must not raise
    env.run()


def test_unhandled_interrupt_fails_process():
    env = Environment()

    def victim(env):
        yield env.timeout(100.0)

    v = env.process(victim(env))

    def attacker(env):
        yield env.timeout(1.0)
        v.interrupt()

    env.process(attacker(env))
    env.run()
    assert v.triggered and not v.ok


# ----------------------------------------------------------------------
# AllOf / AnyOf
# ----------------------------------------------------------------------
def test_all_of_waits_for_every_event():
    env = Environment()
    a, b = env.timeout(1.0, "a"), env.timeout(3.0, "b")
    combo = env.all_of([a, b])

    def proc(env):
        values = yield combo
        return (env.now, values)

    p = env.process(proc(env))
    env.run()
    assert p.value == (3.0, ["a", "b"])


def test_all_of_empty_succeeds_immediately():
    env = Environment()
    combo = env.all_of([])
    assert combo.triggered and combo.value == []


def test_all_of_with_already_processed_events():
    env = Environment()
    a = env.timeout(1.0, "a")
    env.run()
    b = env.timeout(1.0, "b")
    combo = env.all_of([a, b])
    env.run()
    assert combo.triggered and combo.value == ["a", "b"]


def test_all_of_fails_when_member_fails():
    env = Environment()
    good = env.timeout(1.0)
    bad = env.event()
    combo = env.all_of([good, bad])
    bad.fail(ValueError("nope"))
    env.run()
    assert combo.triggered and not combo.ok
    assert isinstance(combo.value, ValueError)


def test_any_of_fires_on_first_event():
    env = Environment()
    combo = env.any_of([env.timeout(5.0, "slow"), env.timeout(1.0, "fast")])

    def proc(env):
        value = yield combo
        return (env.now, value)

    p = env.process(proc(env))
    env.run()
    assert p.value == (1.0, "fast")


def test_any_of_empty_succeeds_immediately():
    env = Environment()
    assert env.any_of([]).triggered


def test_condition_rejects_foreign_environment():
    env1, env2 = Environment(), Environment()
    foreign = env2.event()
    with pytest.raises(SimulationError):
        AllOf(env1, [foreign])
    with pytest.raises(SimulationError):
        AnyOf(env1, [foreign])
