"""Tests of the five workloads against published architecture figures."""

import pytest

from repro.core.errors import ConfigurationError
from repro.dnn import build_network, compile_network, network_input_shape
from repro.dnn.zoo import PAPER_NETWORKS, available_networks


@pytest.fixture(scope="module")
def stats():
    return {
        name: compile_network(build_network(name), network_input_shape(name))
        for name in PAPER_NETWORKS
    }


def test_registry_contains_paper_networks():
    assert set(PAPER_NETWORKS) <= set(available_networks())


def test_unknown_network_rejected():
    with pytest.raises(ConfigurationError):
        build_network("transformer-xl")
    with pytest.raises(ConfigurationError):
        network_input_shape("transformer-xl")


def test_vgg16_extension_registered():
    stats = compile_network(build_network("vgg16"), network_input_shape("vgg16"))
    assert stats.total_params == pytest.approx(138.36e6, rel=0.01)
    assert stats.conv_layer_count == 13
    assert stats.fc_layer_count == 3


# ----------------------------------------------------------------------
# Parameter counts vs published values
# ----------------------------------------------------------------------
def test_lenet_parameters(stats):
    # Classic LeNet-5 scaled to 1000 classes: ~146K parameters.
    assert stats["lenet"].total_params == pytest.approx(146_000, rel=0.05)


def test_alexnet_parameters(stats):
    assert stats["alexnet"].total_params == pytest.approx(61.1e6, rel=0.01)


def test_googlenet_parameters(stats):
    assert stats["googlenet"].total_params == pytest.approx(7.0e6, rel=0.03)


def test_inception_v3_parameters(stats):
    assert stats["inception-v3"].total_params == pytest.approx(23.8e6, rel=0.02)


def test_resnet50_parameters(stats):
    assert stats["resnet"].total_params == pytest.approx(25.6e6, rel=0.01)


# ----------------------------------------------------------------------
# Layer counts (paper Table I structure)
# ----------------------------------------------------------------------
def test_lenet_structure(stats):
    s = stats["lenet"]
    assert s.conv_layer_count == 2
    assert s.fc_layer_count == 3


def test_alexnet_structure(stats):
    s = stats["alexnet"]
    assert s.conv_layer_count == 5
    assert s.fc_layer_count == 3


def test_googlenet_structure(stats):
    s = stats["googlenet"]
    assert s.module_count == 9          # nine inception modules
    assert s.fc_layer_count == 1
    assert s.conv_layer_count == 57     # 3 stem + 9 modules x 6 convs


def test_inception_v3_structure(stats):
    s = stats["inception-v3"]
    assert s.module_count == 11         # A x3, B, C x4, D, E x2
    assert s.fc_layer_count == 1
    assert s.conv_layer_count == 94


def test_resnet50_structure(stats):
    s = stats["resnet"]
    assert s.module_count == 16         # bottleneck blocks: 3+4+6+3
    assert s.fc_layer_count == 1
    assert s.conv_layer_count == 53     # 1 stem + 16x3 + 4 projections


# ----------------------------------------------------------------------
# FLOPs vs published values (2 FLOPs per MAC convention)
# ----------------------------------------------------------------------
def test_alexnet_flops(stats):
    assert stats["alexnet"].forward_flops_per_sample == pytest.approx(
        1.4e9, rel=0.1
    )


def test_inception_v3_flops(stats):
    # ~5.7 GMAC at 299x299 -> ~11.4 GFLOPs.
    assert stats["inception-v3"].forward_flops_per_sample == pytest.approx(
        11.4e9, rel=0.1
    )


def test_resnet50_flops(stats):
    # ~4.1 GMAC at 224x224 -> ~8.2 GFLOPs.
    assert stats["resnet"].forward_flops_per_sample == pytest.approx(
        8.2e9, rel=0.1
    )


def test_backward_flops_roughly_double_forward(stats):
    for s in stats.values():
        ratio = s.backward_flops_per_sample / s.forward_flops_per_sample
        assert 1.5 <= ratio <= 2.1


# ----------------------------------------------------------------------
# Ordering relations the paper relies on
# ----------------------------------------------------------------------
def test_parameter_ordering(stats):
    """AlexNet has by far the most weights; LeNet by far the fewest."""
    params = {n: s.total_params for n, s in stats.items()}
    assert params["alexnet"] > params["resnet"] > params["inception-v3"]
    assert params["inception-v3"] > params["googlenet"] > params["lenet"]


def test_weight_array_count_ordering(stats):
    """Layer-rich networks expose many more KVStore keys."""
    arrays = {n: len(s.weight_arrays) for n, s in stats.items()}
    assert arrays["inception-v3"] > arrays["resnet"] > arrays["googlenet"]
    assert arrays["googlenet"] > arrays["alexnet"] > arrays["lenet"]


def test_compute_intensity_ordering(stats):
    flops = {n: s.forward_flops_per_sample for n, s in stats.items()}
    assert flops["inception-v3"] > flops["resnet"] > flops["googlenet"]
    assert flops["googlenet"] > flops["alexnet"] > flops["lenet"]


def test_weight_arrays_unique_keys(stats):
    for s in stats.values():
        keys = [w.key for w in s.weight_arrays]
        assert keys == sorted(set(keys))


def test_arrays_sum_to_total(stats):
    for s in stats.values():
        assert sum(w.numel for w in s.weight_arrays) == s.total_params


def test_input_shapes_follow_paper():
    assert network_input_shape("inception-v3").height == 299
    assert network_input_shape("alexnet").height == 224
    assert network_input_shape("googlenet").height == 224
    assert network_input_shape("resnet").height == 224
    assert network_input_shape("lenet").height == 32


def test_custom_class_count():
    net = build_network("lenet")
    small = compile_network(net, network_input_shape("lenet"))
    from repro.dnn.zoo import build_lenet

    ten = compile_network(build_lenet(num_classes=10), network_input_shape("lenet"))
    assert ten.total_params < small.total_params
