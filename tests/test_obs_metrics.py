"""Tests for the labelled metrics registry and the event->metric bridge."""

import pytest

from repro.obs import (
    EventBus,
    KernelEvent,
    LinkBusyEvent,
    LinkWaitEvent,
    MetricsRegistry,
    QueueDepthEvent,
    RingStepEvent,
    install_default_metrics,
)
from repro.obs.metrics import MetricError


# ----------------------------------------------------------------------
# Instruments
# ----------------------------------------------------------------------
def test_counter_labels_accumulate_independently():
    registry = MetricsRegistry()
    c = registry.counter("kernel_time_total", "busy", ("gpu", "stage"))
    c.labels(gpu=0, stage="fp").inc(1.5)
    c.labels(gpu=0, stage="fp").inc(0.5)
    c.labels(gpu=1, stage="bp").inc(3.0)
    assert registry.counter_value("kernel_time_total", gpu=0, stage="fp") == 2.0
    assert registry.counter_value("kernel_time_total", gpu=1, stage="bp") == 3.0
    assert registry.counter_value("kernel_time_total", gpu=9, stage="fp") == 0.0


def test_counter_rejects_decrease():
    c = MetricsRegistry().counter("x_total")
    with pytest.raises(MetricError):
        c.inc(-1)


def test_counter_label_schema_enforced():
    c = MetricsRegistry().counter("x_total", labelnames=("a",))
    with pytest.raises(MetricError):
        c.labels(b=1)
    with pytest.raises(MetricError):
        c.labels()
    with pytest.raises(MetricError):
        c.inc()  # labelled counter needs .labels()


def test_gauge_set_inc_dec():
    g = MetricsRegistry().gauge("depth")
    g.set(10)
    g.inc(5)
    g.dec(2)
    assert g.value == 13


def test_histogram_buckets_are_cumulative():
    h = MetricsRegistry().histogram("d", buckets=(0.1, 1.0, 10.0))
    for v in (0.05, 0.5, 0.5, 5.0, 50.0):
        h.observe(v)
    child = h.labels()
    assert child.cumulative_counts() == [1, 3, 4]
    assert child.count == 5
    assert child.sum == pytest.approx(56.05)


def test_registry_get_or_create_is_idempotent():
    registry = MetricsRegistry()
    a = registry.counter("x_total", labelnames=("k",))
    b = registry.counter("x_total", labelnames=("k",))
    assert a is b


def test_registry_rejects_kind_and_schema_mismatch():
    registry = MetricsRegistry()
    registry.counter("x_total", labelnames=("k",))
    with pytest.raises(MetricError):
        registry.gauge("x_total")
    with pytest.raises(MetricError):
        registry.counter("x_total", labelnames=("other",))


def test_collect_is_sorted_by_name():
    registry = MetricsRegistry()
    registry.counter("zeta_total")
    registry.counter("alpha_total")
    assert [m.name for m in registry.collect()] == ["alpha_total", "zeta_total"]


# ----------------------------------------------------------------------
# Bridge: events -> canonical metrics
# ----------------------------------------------------------------------
@pytest.fixture()
def wired():
    bus = EventBus()
    registry = install_default_metrics(bus, MetricsRegistry())
    return bus, registry


def test_kernel_events_feed_kernel_time(wired):
    bus, registry = wired
    bus.publish(KernelEvent(gpu=0, name="k", layer="l", stage="fp",
                            start=0.0, end=1.5))
    bus.publish(KernelEvent(gpu=0, name="k", layer="l", stage="fp",
                            start=2.0, end=2.5))
    assert registry.counter_value("kernel_time_total", gpu=0, stage="fp") == 2.0
    assert registry.counter_value("kernels_total", gpu=0, stage="fp") == 2


def test_link_busy_materializes_zero_wait_counter(wired):
    bus, registry = wired
    bus.publish(LinkBusyEvent(link="gpu0<->gpu1:nvlinkx2", src="gpu0",
                              dst="gpu1", link_type="nvlink", nbytes=100,
                              start=0.0, end=1.0))
    assert registry.counter_value("link_bytes_total", src="gpu0", dst="gpu1",
                                  link_type="nvlink") == 100
    # The wait counter exists (at zero) the moment the link carries traffic.
    assert {"src": "gpu0", "dst": "gpu1", "link_type": "nvlink"} in (
        registry.label_sets("link_wait_time_total")
    )


def test_link_wait_accumulates(wired):
    bus, registry = wired
    for _ in range(2):
        bus.publish(LinkWaitEvent(link="gpu0<->gpu1:nvlinkx2", src="gpu0",
                                  dst="gpu1", link_type="nvlink",
                                  wait=0.25, at=1.0))
    assert registry.counter_value("link_wait_time_total", src="gpu0",
                                  dst="gpu1", link_type="nvlink") == 0.5


def test_ring_steps_feed_link_bytes_and_histogram(wired):
    bus, registry = wired
    bus.publish(RingStepEvent(collective="reduce", array="w", step=0,
                              src=0, dst=1, link_type="nvlink", nbytes=4096,
                              start=0.0, end=1e-5))
    assert registry.counter_value("ring_steps_total", collective="reduce") == 1
    assert registry.counter_value("link_bytes_total", src="gpu0", dst="gpu1",
                                  link_type="nvlink") == 4096
    hist = registry.get("ring_step_seconds")
    assert hist.labels(collective="reduce").count == 1


def test_queue_depth_gauge_tracks_max(wired):
    bus, registry = wired
    for depth in (3, 17, 5):
        bus.publish(QueueDepthEvent(now=0.0, depth=depth))
    assert registry.get("sim_event_queue_depth").value == 5
    assert registry.get("sim_event_queue_depth_max").value == 17
