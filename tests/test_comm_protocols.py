"""Tests for the NCCL algorithm/protocol fidelity layer.

Covers the protocol cost table, tree plan construction, the auto-tuner's
regime structure, the non-compat communicator wiring (events, durations),
and -- critically -- that compat mode reproduces the pre-PR calibrated
numbers bit for bit.
"""

import pytest

from repro.comm import NcclAllReduceCommunicator, NcclCommunicator, make_communicator
from repro.comm.nccl.protocol import (
    NcclAlgorithm,
    NcclProtocol,
    protocol_table,
    ring_collective_time,
    ring_hop_bytes,
    ring_wire_total,
    tree_collective_time,
    tree_hop_bytes,
    tree_wire_total,
)
from repro.comm.nccl.rings import build_ring_plan
from repro.comm.nccl.tuning import CANDIDATE_ORDER, NcclTuner, crossover_sizes
from repro.core.config import CommMethodName, TrainingConfig
from repro.core.constants import CALIBRATION
from repro.core.errors import ConfigurationError
from repro.dnn.stats import WeightArray
from repro.gpu import GpuDevice, KernelCostModel
from repro.obs import CollectiveChunkEvent, EventBus, ProtocolChoiceEvent, RingStepEvent
from repro.profile import Profiler
from repro.sim import Environment
from repro.topology import Fabric, build_dgx1v
from repro.topology.trees import build_tree_plan, find_nvlink_tree
from repro.train import train


@pytest.fixture(scope="module")
def topo():
    return build_dgx1v()


# ----------------------------------------------------------------------
# Protocol table
# ----------------------------------------------------------------------
def test_protocol_table_efficiencies():
    table = protocol_table(CALIBRATION)
    assert table[NcclProtocol.SIMPLE].bandwidth_ratio == 1.0
    assert table[NcclProtocol.LL].bandwidth_ratio == 0.5
    assert table[NcclProtocol.LL128].bandwidth_ratio == 0.9375


def test_protocol_table_constraints():
    table = protocol_table(CALIBRATION)
    assert table[NcclProtocol.SIMPLE].max_bytes is None
    assert table[NcclProtocol.LL].max_bytes == CALIBRATION.nccl_ll_max_bytes
    assert table[NcclProtocol.LL128].nvlink_only
    assert not table[NcclProtocol.LL].nvlink_only
    # Only Simple pays a flush; LL-family latencies undercut Simple's.
    assert table[NcclProtocol.SIMPLE].flush_cost > 0
    assert table[NcclProtocol.LL].flush_cost == 0
    assert table[NcclProtocol.LL].hop_latency < table[NcclProtocol.SIMPLE].hop_latency
    assert table[NcclProtocol.LL128].hop_latency < table[NcclProtocol.SIMPLE].hop_latency


# ----------------------------------------------------------------------
# Tree construction
# ----------------------------------------------------------------------
@pytest.mark.parametrize("gpus", [2, 4, 8])
def test_nvlink_tree_spans_paper_configs(topo, gpus):
    tree = find_nvlink_tree(topo, list(range(gpus)))
    assert tree is not None
    assert {0} | set(tree) == set(range(gpus))
    assert len(tree) == gpus - 1


def test_tree_edges_are_nvlink(topo):
    tree = find_nvlink_tree(topo, list(range(8)))
    for child, parent in tree.items():
        assert topo.nvlink_between(topo.gpu(child), topo.gpu(parent)) is not None


def test_tree_depth_is_logarithmic(topo):
    assert build_tree_plan(topo, range(2)).depth == 1
    assert build_tree_plan(topo, range(4)).depth == 2
    assert build_tree_plan(topo, range(8)).depth == 3


def test_tree_plan_single_gpu(topo):
    plan = build_tree_plan(topo, [0])
    assert plan.size == 1 and plan.depth == 0 and not plan.parent


def test_tree_plan_binary(topo):
    plan = build_tree_plan(topo, range(8))
    for gpu in range(8):
        assert len(plan.children_of(gpu)) <= 2


def test_tree_pcie_fallback():
    pcie = build_dgx1v(nvlink=False)
    plan = build_tree_plan(pcie, range(4))
    assert plan.uses_pcie
    assert plan.depth == 2


# ----------------------------------------------------------------------
# Cost model
# ----------------------------------------------------------------------
def test_ring_time_monotonic_in_bytes():
    proto = protocol_table(CALIBRATION)[NcclProtocol.SIMPLE]
    times = [
        ring_collective_time("allreduce", nbytes, 8, 40e9, proto)
        for nbytes in (1 << 12, 1 << 16, 1 << 20, 1 << 24)
    ]
    assert times == sorted(times)
    assert times[0] < times[-1]


def test_tree_beats_ring_latency_at_small_sizes():
    """Six tree steps versus fourteen ring steps: latency-bound sizes
    favour the tree."""
    proto = protocol_table(CALIBRATION)[NcclProtocol.LL]
    ring = ring_collective_time("allreduce", 4096, 8, 40e9, proto)
    tree = tree_collective_time("allreduce", 4096, 3, 40e9, proto)
    assert tree < ring


def test_ring_beats_tree_bandwidth_at_large_sizes():
    """2(N-1)/N * S per channel versus 2S: bandwidth-bound sizes favour
    the ring."""
    proto = protocol_table(CALIBRATION)[NcclProtocol.SIMPLE]
    nbytes = 64 * 1024 * 1024
    ring = ring_collective_time("allreduce", nbytes, 8, 40e9, proto)
    tree = tree_collective_time("allreduce", nbytes, 3, 40e9, proto)
    assert ring < tree


# ----------------------------------------------------------------------
# Exact wire-byte schedules
# ----------------------------------------------------------------------
@pytest.mark.parametrize("nbytes", [7, 1000, 4096, 999_983])
@pytest.mark.parametrize("size", [2, 4, 8])
def test_ring_allreduce_wire_total_exact(nbytes, size):
    assert ring_wire_total("allreduce", nbytes, size) == 2 * (size - 1) * nbytes


@pytest.mark.parametrize("nbytes", [7, 1000, 999_983])
@pytest.mark.parametrize("size", [2, 4, 8])
def test_ring_and_tree_move_identical_totals(nbytes, size):
    """Both algorithms put exactly 2(N-1)*S on the wire for AllReduce."""
    ring = ring_wire_total("allreduce", nbytes, size)
    tree = tree_wire_total("allreduce", nbytes, size - 1)
    assert ring == tree == 2 * (size - 1) * nbytes


def test_ring_hop_schedule_each_step_moves_full_payload():
    nbytes, size = 1001, 4
    for step in range(2 * (size - 1)):
        moved = sum(
            b
            for hop in range(size)
            for s, b in ring_hop_bytes("allreduce", nbytes, size, hop)
            if s == step
        )
        assert moved == nbytes


def test_tree_hop_schedule_directions():
    hops = tree_hop_bytes("allreduce", 100, 3)
    assert len(hops) == 6  # 3 edges x 2 directions
    assert {d for _, d, _ in hops} == {0, 1}
    reduce_only = tree_hop_bytes("reduce", 100, 3)
    assert {d for _, d, _ in reduce_only} == {0}


# ----------------------------------------------------------------------
# Tuner
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def tuner():
    return NcclTuner.for_dgx1(num_gpus=8)


def test_tuner_small_messages_use_ll(tuner):
    choice = tuner.select("allreduce", 16 * 1024)
    assert choice.protocol is NcclProtocol.LL
    assert choice.algorithm is NcclAlgorithm.TREE


def test_tuner_large_messages_use_ring_simple(tuner):
    choice = tuner.select("allreduce", 64 * 1024 * 1024)
    assert choice.algorithm is NcclAlgorithm.RING
    assert choice.protocol is NcclProtocol.SIMPLE


def test_tuner_ll_respects_byte_cap(tuner):
    over_cap = CALIBRATION.nccl_ll_max_bytes + 1
    combos = [(a, p) for a, p, _ in tuner.candidates("allreduce", over_cap)]
    assert (NcclAlgorithm.RING, NcclProtocol.LL) not in combos
    assert (NcclAlgorithm.TREE, NcclProtocol.LL) not in combos


def test_tuner_crossover_structure(tuner):
    """The acceptance shape: LL first, ring+Simple last, monotone sizes."""
    points = crossover_sizes(tuner)
    sizes = [size for size, _ in points]
    assert sizes == sorted(sizes)
    first, last = points[0][1], points[-1][1]
    assert first.protocol is NcclProtocol.LL
    assert (last.algorithm, last.protocol) == (
        NcclAlgorithm.RING, NcclProtocol.SIMPLE)


def test_tuner_selection_is_argmin_of_candidates(tuner):
    for nbytes in (4096, 1 << 20, 1 << 26):
        choice = tuner.select("allreduce", nbytes)
        best = min(tuner.candidates("allreduce", nbytes), key=lambda c: c[2])
        assert (choice.algorithm, choice.protocol, choice.predicted) == best


def test_tuner_memoizes(tuner):
    assert tuner.select("allreduce", 8192) is tuner.select("allreduce", 8192)


def test_pinned_tuner_honours_pin_past_caps():
    pinned = NcclTuner.for_dgx1(num_gpus=8, algorithm="ring", protocol="ll")
    choice = pinned.select("allreduce", 64 * 1024 * 1024)  # way over LL cap
    assert choice.protocol is NcclProtocol.LL
    assert choice.pinned


def test_ll128_unavailable_on_pcie():
    pcie = build_dgx1v(nvlink=False)
    indices = list(range(4))
    t = NcclTuner(
        ring=build_ring_plan(pcie, indices, CALIBRATION),
        tree=build_tree_plan(pcie, indices, CALIBRATION),
    )
    combos = [(a, p) for a, p, _ in t.candidates("allreduce", 1 << 20)]
    assert all(p is not NcclProtocol.LL128 for _, p in combos)


def test_candidate_order_covers_grid():
    assert len(CANDIDATE_ORDER) == 6
    assert len(set(CANDIDATE_ORDER)) == 6


# ----------------------------------------------------------------------
# Config knobs
# ----------------------------------------------------------------------
def test_config_rejects_mixed_compat():
    with pytest.raises(ConfigurationError):
        TrainingConfig("lenet", 16, 4, nccl_algorithm="compat",
                       nccl_protocol="ll")
    with pytest.raises(ConfigurationError):
        TrainingConfig("lenet", 16, 4, nccl_algorithm="ring",
                       nccl_protocol="compat")


def test_config_rejects_unknown_values():
    with pytest.raises(ConfigurationError):
        TrainingConfig("lenet", 16, 4, nccl_algorithm="butterfly",
                       nccl_protocol="auto")
    with pytest.raises(ConfigurationError):
        TrainingConfig("lenet", 16, 4, nccl_algorithm="auto",
                       nccl_protocol="ll256")


def test_config_describe_shows_non_compat_modes():
    compat = TrainingConfig("lenet", 16, 4)
    tuned = TrainingConfig("lenet", 16, 4, nccl_algorithm="auto",
                           nccl_protocol="auto")
    assert "auto" not in compat.describe()
    assert "auto+auto" in tuned.describe()


# ----------------------------------------------------------------------
# Communicator wiring
# ----------------------------------------------------------------------
def _run_sync(comm_cls, num_gpus, numel, **comm_kwargs):
    env = Environment()
    topo = build_dgx1v()
    fabric = Fabric(env, topo, CALIBRATION)
    devices = [GpuDevice(env, topo.gpu(i)) for i in range(num_gpus)]
    bus = EventBus()
    events = []
    bus.subscribe(ProtocolChoiceEvent, events.append)
    bus.subscribe(CollectiveChunkEvent, events.append)
    bus.subscribe(RingStepEvent, events.append)
    profiler = Profiler(bus=bus)
    comm = comm_cls(env, fabric, devices, KernelCostModel(), CALIBRATION,
                    profiler, **comm_kwargs)
    array = WeightArray(0, "w", numel, "l")
    done = env.process(comm.sync_array(array))
    env.run(until=done)
    return comm, events


def test_compat_constructor_rejects_mixed_modes():
    env = Environment()
    topo = build_dgx1v()
    fabric = Fabric(env, topo, CALIBRATION)
    devices = [GpuDevice(env, topo.gpu(i)) for i in range(2)]
    with pytest.raises(ValueError):
        NcclCommunicator(env, fabric, devices, KernelCostModel(), CALIBRATION,
                         algorithm="compat", protocol="ll")


def test_compat_communicator_builds_no_tuner():
    comm, events = _run_sync(NcclCommunicator, 4, 50_000)
    assert comm._tuner is None and comm.tree is None
    assert not any(isinstance(e, ProtocolChoiceEvent) for e in events)
    assert not any(isinstance(e, CollectiveChunkEvent) for e in events)


def test_auto_communicator_emits_choices():
    comm, events = _run_sync(NcclCommunicator, 4, 50_000,
                             algorithm="auto", protocol="auto")
    assert comm._tuner is not None and comm.tree is not None
    choices = [e for e in events if isinstance(e, ProtocolChoiceEvent)]
    # reduce + broadcast for the legacy NCCL KVStore path
    assert {c.collective for c in choices} == {"reduce", "broadcast"}
    for choice in choices:
        assert choice.algorithm in ("ring", "tree")
        assert choice.protocol in ("simple", "ll", "ll128")
        assert choice.predicted > 0


def test_tree_pinned_allreduce_emits_chunks():
    comm, events = _run_sync(NcclAllReduceCommunicator, 4, 50_000,
                             algorithm="tree", protocol="ll128")
    chunks = [e for e in events if isinstance(e, CollectiveChunkEvent)]
    assert chunks, "tree collectives must emit CollectiveChunkEvents"
    edges = {(c.src, c.dst) for c in chunks}
    # Both directions of every tree edge appear.
    tree_pairs = {(child, parent) for child, parent in comm.tree.parent}
    assert edges == tree_pairs | {(p, c) for c, p in tree_pairs}
    # Chunk bytes over one direction of one edge sum to the wire payload.
    child, parent = next(iter(tree_pairs))
    up = sum(c.nbytes for c in chunks if (c.src, c.dst) == (child, parent))
    assert up == comm._comm_bytes(WeightArray(0, "w", 50_000, "l"))


def test_ring_pinned_allreduce_keeps_ring_events():
    _, events = _run_sync(NcclAllReduceCommunicator, 4, 50_000,
                          algorithm="ring", protocol="simple")
    assert any(isinstance(e, RingStepEvent) for e in events)
    assert not any(isinstance(e, CollectiveChunkEvent) for e in events)
    assert any(isinstance(e, ProtocolChoiceEvent) for e in events)


def test_factory_drops_knobs_for_non_nccl():
    env = Environment()
    topo = build_dgx1v()
    fabric = Fabric(env, topo, CALIBRATION)
    devices = [GpuDevice(env, topo.gpu(i)) for i in range(2)]
    comm = make_communicator(
        CommMethodName.P2P, env, fabric, devices, KernelCostModel(),
        CALIBRATION, algorithm="auto", protocol="auto",
    )
    assert comm.name == "p2p"
    nccl = make_communicator(
        CommMethodName.NCCL, env, fabric, devices, KernelCostModel(),
        CALIBRATION, algorithm="auto", protocol="auto",
    )
    assert nccl.algorithm == "auto"


# ----------------------------------------------------------------------
# Compat golden outputs: the pre-PR calibrated numbers, bit for bit
# ----------------------------------------------------------------------
#: Captured on the commit preceding this layer (defaults throughout).
PRE_PR_EPOCHS = {
    ("lenet", CommMethodName.P2P, 1): 15.866798217384112,
    ("lenet", CommMethodName.P2P, 4): 6.6436539552019855,
    ("lenet", CommMethodName.NCCL, 1): 18.91055821738413,
    ("lenet", CommMethodName.NCCL, 4): 9.00794233194603,
    ("alexnet", CommMethodName.P2P, 1): 100.14179615525055,
    ("alexnet", CommMethodName.P2P, 4): 31.781869340861967,
    ("alexnet", CommMethodName.NCCL, 1): 104.56181215525058,
    ("alexnet", CommMethodName.NCCL, 4): 66.54231513721604,
}


@pytest.mark.parametrize("network,method,gpus", sorted(
    PRE_PR_EPOCHS, key=str))
def test_compat_mode_reproduces_pre_pr_numbers(network, method, gpus):
    result = train(TrainingConfig(network, 16, gpus, comm_method=method))
    assert result.epoch_time == PRE_PR_EPOCHS[(network, method, gpus)]


def test_auto_mode_changes_nccl_epoch():
    """The knob is live: auto tuning must not silently fall back to compat."""
    compat = train(TrainingConfig("alexnet", 16, 4,
                                  comm_method=CommMethodName.NCCL))
    tuned = train(TrainingConfig("alexnet", 16, 4,
                                 comm_method=CommMethodName.NCCL,
                                 nccl_algorithm="auto",
                                 nccl_protocol="auto"))
    assert tuned.epoch_time != compat.epoch_time
