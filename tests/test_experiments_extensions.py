"""Tests for the extension experiments (async study, bandwidth sweep)."""

import pytest

from repro.core.config import CommMethodName, SimulationConfig
from repro.experiments import async_study, bandwidth_sweep

FAST = SimulationConfig(warmup_iterations=1, measure_iterations=2)


# ----------------------------------------------------------------------
# Async study
# ----------------------------------------------------------------------
def test_async_study_structure():
    result = async_study.run(networks=("lenet",), gpu_counts=(2, 4), sim=FAST)
    assert len(result.rows) == 2
    row = result.row("lenet", 4)
    assert row.raw_speedup > 1.0              # async removes the barrier
    assert row.async_effective_epoch > row.async_epoch
    assert row.staleness_mean > 0
    with pytest.raises(KeyError):
        result.row("lenet", 8)


def test_async_study_staleness_grows():
    result = async_study.run(networks=("lenet",), gpu_counts=(2, 8), sim=FAST)
    assert result.row("lenet", 8).staleness_mean > result.row("lenet", 2).staleness_mean


def test_async_study_render():
    result = async_study.run(networks=("lenet",), gpu_counts=(2,), sim=FAST)
    text = async_study.render(result)
    assert "Staleness" in text and "Effective" in text


# ----------------------------------------------------------------------
# Bandwidth sweep
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def sweep():
    return bandwidth_sweep.run(
        networks=("alexnet",),
        methods=(CommMethodName.P2P,),
        scales=(0.5, 1.0, 4.0),
        num_gpus=4,
        sim=FAST,
    )


def test_bandwidth_sweep_monotone(sweep):
    assert (
        sweep.epoch("alexnet", "p2p", 0.5)
        > sweep.epoch("alexnet", "p2p", 1.0)
        > sweep.epoch("alexnet", "p2p", 4.0)
    )


def test_bandwidth_gain_sublinear(sweep):
    """4x bandwidth gives much less than 4x speedup -- the paper's claim."""
    assert 1.0 < sweep.gain("alexnet", "p2p", 4.0) < 3.0


def test_bandwidth_sweep_lookup_errors(sweep):
    with pytest.raises(KeyError):
        sweep.epoch("alexnet", "p2p", 16.0)


def test_bandwidth_sweep_render(sweep):
    text = bandwidth_sweep.render(sweep)
    assert "bandwidth sweep" in text
    assert "4x BW" in text


# ----------------------------------------------------------------------
# Topology bandwidth scaling plumbing
# ----------------------------------------------------------------------
def test_scaled_topology_links():
    from repro.topology import build_dgx1v
    from repro.topology.links import LinkType

    base = build_dgx1v()
    fast = build_dgx1v(nvlink_bandwidth_scale=2.0)
    base_link = base.nvlink_between(base.gpu(0), base.gpu(1))
    fast_link = fast.nvlink_between(fast.gpu(0), fast.gpu(1))
    assert fast_link.peak_bandwidth() == 2 * base_link.peak_bandwidth()
    # PCIe untouched
    base_pcie = [l for l in base.links if l.link_type is LinkType.PCIE][0]
    fast_pcie = [l for l in fast.links if l.link_type is LinkType.PCIE][0]
    assert base_pcie.peak_bandwidth() == fast_pcie.peak_bandwidth()


def test_scaled_topology_affects_nccl_rings():
    from repro.comm.nccl.rings import build_ring_plan
    from repro.topology import build_dgx1v

    base = build_ring_plan(build_dgx1v(), range(8))
    fast = build_ring_plan(build_dgx1v(nvlink_bandwidth_scale=4.0), range(8))
    assert fast.channel_bandwidth == pytest.approx(4 * base.channel_bandwidth)


def test_invalid_scale_rejected():
    from repro.topology import build_dgx1v

    with pytest.raises(ValueError):
        build_dgx1v(nvlink_bandwidth_scale=0.0)
