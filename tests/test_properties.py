"""Cross-subsystem property-based tests (hypothesis)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.comm import P2PCommunicator, reduction_tree
from repro.comm.nccl import NcclCommunicator
from repro.comm.nccl.protocol import ring_wire_total, tree_wire_total
from repro.core.constants import CALIBRATION
from repro.dnn import build_network, compile_network, network_input_shape
from repro.dnn.stats import WeightArray
from repro.gpu import GpuDevice, KernelCostModel, MemoryModel
from repro.sim import Environment
from repro.topology import Fabric, build_dgx1v


# ----------------------------------------------------------------------
# Reduction tree
# ----------------------------------------------------------------------
@given(n=st.integers(min_value=1, max_value=64))
def test_reduction_tree_properties(n):
    stages = reduction_tree(n)
    sources = [src for stage in stages for src, _ in stage]
    destinations = [dst for stage in stages for _, dst in stage]
    # every non-root node sends exactly once
    assert sorted(sources) == list(range(1, n))
    # the root never sends
    assert 0 not in sources
    # every destination is eventually drained toward 0 (or is 0)
    assert 0 in destinations or n == 1
    # log2 depth
    assert len(stages) == max(0, (n - 1)).bit_length()


# ----------------------------------------------------------------------
# Communication byte conservation
# ----------------------------------------------------------------------
def _sync_bytes(comm_cls, num_gpus, numel):
    env = Environment()
    topo = build_dgx1v()
    fabric = Fabric(env, topo, CALIBRATION)
    devices = [GpuDevice(env, topo.gpu(i)) for i in range(num_gpus)]
    comm = comm_cls(env, fabric, devices, KernelCostModel(), CALIBRATION)
    array = WeightArray(0, "w", numel, "l")
    done = env.process(comm.sync_array(array))
    env.run(until=done)
    return sum(fabric.bytes_moved.values()), env.now


@settings(max_examples=12, deadline=None)
@given(
    numel=st.integers(min_value=1_000, max_value=900_000),
    gpus=st.sampled_from([2, 4, 8]),
)
def test_p2p_tree_bytes_exact(numel, gpus):
    """Small (tree-path) arrays move exactly 2*(N-1) copies on the wire."""
    moved, elapsed = _sync_bytes(P2PCommunicator, gpus, numel)
    assert moved == 2 * (gpus - 1) * numel * 4
    assert elapsed > 0


@settings(max_examples=50, deadline=None)
@given(
    nbytes=st.integers(min_value=1, max_value=1 << 30),
    gpus=st.integers(min_value=2, max_value=16),
)
def test_ring_and_tree_allreduce_wire_totals_agree(nbytes, gpus):
    """Ring and tree AllReduce move the identical wire total, 2(N-1)*S,
    exactly -- for any payload size, including uneven integer splits."""
    ring = ring_wire_total("allreduce", nbytes, gpus)
    tree = tree_wire_total("allreduce", nbytes, gpus - 1)
    assert ring == tree == 2 * (gpus - 1) * nbytes


@settings(max_examples=8, deadline=None)
@given(
    numel=st.integers(min_value=1_000_000, max_value=8_000_000),
    gpus=st.sampled_from([2, 4, 8]),
)
def test_p2p_sharded_bytes_bounded(numel, gpus):
    """Sharded arrays move at least the algorithmic minimum and at most
    the relayed worst case (every transfer staged through one hop)."""
    moved, _ = _sync_bytes(P2PCommunicator, gpus, numel)
    shard = -(-numel * 4 // gpus)
    minimum = 2 * gpus * (gpus - 1) * shard
    assert minimum <= moved <= 2 * minimum


@settings(max_examples=10, deadline=None)
@given(
    numel=st.integers(min_value=1_000, max_value=5_000_000),
    gpus=st.sampled_from([2, 4, 8]),
)
def test_sync_time_monotone_in_size(numel, gpus):
    _, t_small = _sync_bytes(NcclCommunicator, gpus, numel)
    _, t_big = _sync_bytes(NcclCommunicator, gpus, numel * 2)
    assert t_big >= t_small


# ----------------------------------------------------------------------
# Memory model monotonicity
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def googlenet_stats():
    return compile_network(build_network("googlenet"),
                           network_input_shape("googlenet"))


@settings(max_examples=25, deadline=None)
@given(batch=st.integers(min_value=1, max_value=512))
def test_memory_monotone_in_batch(googlenet_stats, batch):
    model = MemoryModel()
    smaller = model.training(googlenet_stats, batch).total
    larger = model.training(googlenet_stats, batch + 1).total
    assert larger >= smaller
    assert model.training(googlenet_stats, batch, is_server=True).total > smaller


@settings(max_examples=25, deadline=None)
@given(batch=st.integers(min_value=1, max_value=256))
def test_pretraining_independent_of_batch(googlenet_stats, batch):
    model = MemoryModel()
    assert model.pretraining(googlenet_stats).total == (
        MemoryModel().pretraining(googlenet_stats).total
    )


# ----------------------------------------------------------------------
# Kernel model scale-invariance
# ----------------------------------------------------------------------
@settings(max_examples=40, deadline=None)
@given(
    flops=st.floats(min_value=1e3, max_value=1e11),
    matmul=st.booleans(),
)
def test_kernel_time_superadditive_split(flops, matmul):
    """Splitting work across two kernels never beats one kernel."""
    model = KernelCostModel()
    whole = model.kernel_time(flops, 0, matmul)
    halves = 2 * model.kernel_time(flops / 2, 0, matmul)
    assert halves >= whole - 1e-12
