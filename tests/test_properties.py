"""Cross-subsystem property-based tests (hypothesis)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.comm import P2PCommunicator, reduction_tree
from repro.comm.nccl import NcclCommunicator
from repro.comm.nccl.protocol import ring_wire_total, tree_wire_total
from repro.core.constants import CALIBRATION
from repro.dnn import build_network, compile_network, network_input_shape
from repro.dnn.stats import WeightArray
from repro.gpu import GpuDevice, KernelCostModel, MemoryModel
from repro.sim import Environment
from repro.topology import Fabric, build_dgx1v


# ----------------------------------------------------------------------
# Reduction tree
# ----------------------------------------------------------------------
@given(n=st.integers(min_value=1, max_value=64))
def test_reduction_tree_properties(n):
    stages = reduction_tree(n)
    sources = [src for stage in stages for src, _ in stage]
    destinations = [dst for stage in stages for _, dst in stage]
    # every non-root node sends exactly once
    assert sorted(sources) == list(range(1, n))
    # the root never sends
    assert 0 not in sources
    # every destination is eventually drained toward 0 (or is 0)
    assert 0 in destinations or n == 1
    # log2 depth
    assert len(stages) == max(0, (n - 1)).bit_length()


# ----------------------------------------------------------------------
# Communication byte conservation
# ----------------------------------------------------------------------
def _sync_bytes(comm_cls, num_gpus, numel):
    env = Environment()
    topo = build_dgx1v()
    fabric = Fabric(env, topo, CALIBRATION)
    devices = [GpuDevice(env, topo.gpu(i)) for i in range(num_gpus)]
    comm = comm_cls(env, fabric, devices, KernelCostModel(), CALIBRATION)
    array = WeightArray(0, "w", numel, "l")
    done = env.process(comm.sync_array(array))
    env.run(until=done)
    return sum(fabric.bytes_moved.values()), env.now


@settings(max_examples=12, deadline=None)
@given(
    numel=st.integers(min_value=1_000, max_value=900_000),
    gpus=st.sampled_from([2, 4, 8]),
)
def test_p2p_tree_bytes_exact(numel, gpus):
    """Small (tree-path) arrays move exactly 2*(N-1) copies on the wire."""
    moved, elapsed = _sync_bytes(P2PCommunicator, gpus, numel)
    assert moved == 2 * (gpus - 1) * numel * 4
    assert elapsed > 0


@settings(max_examples=50, deadline=None)
@given(
    nbytes=st.integers(min_value=1, max_value=1 << 30),
    gpus=st.integers(min_value=2, max_value=16),
)
def test_ring_and_tree_allreduce_wire_totals_agree(nbytes, gpus):
    """Ring and tree AllReduce move the identical wire total, 2(N-1)*S,
    exactly -- for any payload size, including uneven integer splits."""
    ring = ring_wire_total("allreduce", nbytes, gpus)
    tree = tree_wire_total("allreduce", nbytes, gpus - 1)
    assert ring == tree == 2 * (gpus - 1) * nbytes


@settings(max_examples=8, deadline=None)
@given(
    numel=st.integers(min_value=1_000_000, max_value=8_000_000),
    gpus=st.sampled_from([2, 4, 8]),
)
def test_p2p_sharded_bytes_bounded(numel, gpus):
    """Sharded arrays move at least the algorithmic minimum and at most
    the relayed worst case (every transfer staged through one hop)."""
    moved, _ = _sync_bytes(P2PCommunicator, gpus, numel)
    shard = -(-numel * 4 // gpus)
    minimum = 2 * gpus * (gpus - 1) * shard
    assert minimum <= moved <= 2 * minimum


@settings(max_examples=10, deadline=None)
@given(
    numel=st.integers(min_value=1_000, max_value=5_000_000),
    gpus=st.sampled_from([2, 4, 8]),
)
def test_sync_time_monotone_in_size(numel, gpus):
    _, t_small = _sync_bytes(NcclCommunicator, gpus, numel)
    _, t_big = _sync_bytes(NcclCommunicator, gpus, numel * 2)
    assert t_big >= t_small


# ----------------------------------------------------------------------
# Memory model monotonicity
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def googlenet_stats():
    return compile_network(build_network("googlenet"),
                           network_input_shape("googlenet"))


@settings(max_examples=25, deadline=None)
@given(batch=st.integers(min_value=1, max_value=512))
def test_memory_monotone_in_batch(googlenet_stats, batch):
    model = MemoryModel()
    smaller = model.training(googlenet_stats, batch).total
    larger = model.training(googlenet_stats, batch + 1).total
    assert larger >= smaller
    assert model.training(googlenet_stats, batch, is_server=True).total > smaller


@settings(max_examples=25, deadline=None)
@given(batch=st.integers(min_value=1, max_value=256))
def test_pretraining_independent_of_batch(googlenet_stats, batch):
    model = MemoryModel()
    assert model.pretraining(googlenet_stats).total == (
        MemoryModel().pretraining(googlenet_stats).total
    )


# ----------------------------------------------------------------------
# Kernel model scale-invariance
# ----------------------------------------------------------------------
@settings(max_examples=40, deadline=None)
@given(
    flops=st.floats(min_value=1e3, max_value=1e11),
    matmul=st.booleans(),
)
def test_kernel_time_superadditive_split(flops, matmul):
    """Splitting work across two kernels never beats one kernel."""
    model = KernelCostModel()
    whole = model.kernel_time(flops, 0, matmul)
    halves = 2 * model.kernel_time(flops / 2, 0, matmul)
    assert halves >= whole - 1e-12


# ----------------------------------------------------------------------
# Physical invariants hold for randomized configurations (repro.checks)
# ----------------------------------------------------------------------
def _strict_run(config, faults=None):
    """Train ``config`` under strict invariant enforcement; the engine
    raising InvariantViolationError *is* the test failure."""
    from repro.checks import CheckEngine
    from repro.core.config import SimulationConfig
    from repro.train.trainer import Trainer

    engine = CheckEngine("strict")
    kwargs = {} if faults is None else {"faults": faults}
    result = Trainer(
        config,
        sim=SimulationConfig(warmup_iterations=1, measure_iterations=2),
        checks=engine,
        **kwargs,
    ).run()
    assert result.violations == ()
    # Every enabled run must actually exercise checkers, or "zero
    # violations" would be vacuous.
    assert sum(c for c, _ in engine.stats_dict().values()) > 0
    return engine


@settings(max_examples=10, deadline=None)
@given(
    network=st.sampled_from(["lenet", "alexnet", "resnet"]),
    batch=st.sampled_from([16, 32, 64]),
    gpus=st.sampled_from([1, 2, 4, 8]),
    comm=st.sampled_from(["p2p", "nccl", "local", "nccl-allreduce"]),
)
def test_invariants_hold_for_random_configs(network, batch, gpus, comm):
    from repro.core.config import CommMethodName, TrainingConfig

    _strict_run(TrainingConfig(network, batch, gpus,
                               comm_method=CommMethodName(comm)))


@settings(max_examples=6, deadline=None)
@given(
    algo=st.sampled_from(["auto", "ring", "tree"]),
    proto=st.sampled_from(["auto", "simple", "ll", "ll128"]),
    gpus=st.sampled_from([2, 4, 8]),
)
def test_invariants_hold_for_tuner_modes(algo, proto, gpus):
    from repro.core.config import CommMethodName, TrainingConfig

    _strict_run(TrainingConfig(
        "alexnet", 16, gpus, comm_method=CommMethodName.NCCL,
        nccl_algorithm=algo, nccl_protocol=proto,
    ))


@settings(max_examples=6, deadline=None)
@given(
    gpus=st.sampled_from([4, 8]),
    at=st.floats(min_value=0.01, max_value=0.2),
    scenario=st.sampled_from(["isolate", "slow-link"]),
)
def test_invariants_hold_through_faults(gpus, at, scenario):
    """Invariants survive mid-flight degradation and re-ringing."""
    from repro.core.config import CommMethodName, TrainingConfig
    from repro.faults import FaultPlan
    from repro.topology import build_dgx1v

    if scenario == "isolate":
        plan = FaultPlan.isolate_gpu(build_dgx1v(), 0, at=at)
    else:
        plan = FaultPlan.single_link("nvlink:gpu0<->gpu1",
                                     bandwidth_scale=0.25, at=at)
    config = TrainingConfig("alexnet", 16, gpus,
                            comm_method=CommMethodName.NCCL)
    _strict_run(config, faults=plan)
