"""Tests for the memory-capacity study and the alternative GPU specs."""

import pytest

from repro.core.config import SimulationConfig
from repro.dnn import build_network, compile_network, network_input_shape
from repro.experiments import capacity_study
from repro.gpu import MemoryModel
from repro.gpu.spec import TESLA_P100, TESLA_V100, TESLA_V100_32GB

FAST = SimulationConfig(warmup_iterations=1, measure_iterations=2)


def test_spec_catalogue():
    assert TESLA_V100_32GB.memory_bytes == 2 * TESLA_V100.memory_bytes
    assert TESLA_V100_32GB.fp32_flops == TESLA_V100.fp32_flops
    assert TESLA_P100.tensor_speedup == 1.0      # no tensor cores
    assert TESLA_P100.nvlink_ports == 4
    assert TESLA_V100.tensor_speedup > 7.0


def test_32gb_doubles_activation_headroom():
    stats = compile_network(build_network("inception-v3"),
                            network_input_shape("inception-v3"))
    small = MemoryModel(TESLA_V100).max_batch_size(stats)
    big = MemoryModel(TESLA_V100_32GB).max_batch_size(stats)
    assert big > 2 * small  # fixed overheads do not double


def test_capacity_study_structure():
    result = capacity_study.run(networks=("resnet",), num_gpus=4, sim=FAST)
    row = result.row("resnet")
    assert row.max_batch_32gb > row.max_batch_16gb
    assert row.best_batch_32gb >= row.best_batch_16gb
    assert row.capacity_speedup >= 1.0
    with pytest.raises(KeyError):
        result.row("lenet")


def test_capacity_study_render():
    result = capacity_study.run(networks=("resnet",), num_gpus=4, sim=FAST)
    text = capacity_study.render(result)
    assert "16 GiB vs 32 GiB" in text
    assert "resnet" in text


def test_p100_slower_than_v100():
    from repro.core.config import CommMethodName, TrainingConfig
    from repro.train import Trainer

    config = TrainingConfig("resnet", 16, 1, comm_method=CommMethodName.P2P)
    v100 = Trainer(config, sim=FAST, spec=TESLA_V100).run()
    p100 = Trainer(config, sim=FAST, spec=TESLA_P100,
                   use_tensor_cores=False).run()
    assert p100.epoch_time > 1.5 * v100.epoch_time
