"""Per-layer tests: shape inference, parameters, FLOPs."""

import pytest

from repro.core.errors import ShapeError
from repro.dnn.layers import (
    LRN,
    Activation,
    Add,
    AvgPool2d,
    BatchNorm,
    Concat,
    Conv2d,
    Dense,
    Dropout,
    Flatten,
    GlobalAvgPool,
    MaxPool2d,
    Softmax,
)
from repro.dnn.shapes import Shape


# ----------------------------------------------------------------------
# Conv2d
# ----------------------------------------------------------------------
def test_conv_shape():
    conv = Conv2d("c", 64, 3, stride=1, pad=1)
    assert conv.infer_shape([Shape(3, 32, 32)]) == Shape(64, 32, 32)


def test_conv_strided_shape():
    conv = Conv2d("c", 96, 11, stride=4, pad=2)
    assert conv.infer_shape([Shape(3, 224, 224)]) == Shape(96, 55, 55)


def test_conv_param_count():
    conv = Conv2d("c", 64, 3, pad=1)
    arrays = conv.param_arrays([Shape(3, 32, 32)])
    assert {a.name: a.numel for a in arrays} == {
        "c.weight": 3 * 64 * 9,
        "c.bias": 64,
    }


def test_conv_without_bias():
    conv = Conv2d("c", 64, 3, bias=False)
    names = [a.name for a in conv.param_arrays([Shape(3, 32, 32)])]
    assert names == ["c.weight"]


def test_conv_flops_formula():
    conv = Conv2d("c", 64, 3, pad=1)
    x = Shape(16, 8, 8)
    out = conv.infer_shape([x])
    # 2 * K*K*Cin per output element
    assert conv.forward_flops([x], out) == 2 * 9 * 16 * out.numel
    assert conv.backward_flops([x], out) == 2 * conv.forward_flops([x], out)


def test_grouped_conv_divides_flops_and_params():
    full = Conv2d("f", 64, 3, pad=1)
    grouped = Conv2d("g", 64, 3, pad=1, groups=4)
    x = Shape(16, 8, 8)
    out = full.infer_shape([x])
    assert grouped.forward_flops([x], out) == full.forward_flops([x], out) / 4
    assert grouped.param_count([x]) < full.param_count([x])


def test_conv_rejects_flat_input():
    with pytest.raises(ShapeError):
        Conv2d("c", 8, 3).infer_shape([Shape(100)])


def test_conv_rejects_bad_groups():
    with pytest.raises(ShapeError):
        Conv2d("c", 64, 3, groups=5)
    with pytest.raises(ShapeError):
        Conv2d("c", 64, 3, groups=4).infer_shape([Shape(6, 8, 8)])


def test_conv_asymmetric_kernel():
    conv = Conv2d("c", 32, (1, 7), pad=(0, 3))
    assert conv.infer_shape([Shape(16, 17, 17)]) == Shape(32, 17, 17)


def test_conv_backward_kernel_count():
    assert Conv2d("c", 8, 3).backward_kernel_count() == 2  # dgrad + wgrad


# ----------------------------------------------------------------------
# Pooling
# ----------------------------------------------------------------------
def test_maxpool_shape():
    pool = MaxPool2d("p", 2)
    assert pool.infer_shape([Shape(6, 28, 28)]) == Shape(6, 14, 14)


def test_maxpool_ceil_mode():
    floor_pool = MaxPool2d("p", 3, stride=2)
    ceil_pool = MaxPool2d("p", 3, stride=2, ceil_mode=True)
    assert floor_pool.infer_shape([Shape(64, 112, 112)]) == Shape(64, 55, 55)
    assert ceil_pool.infer_shape([Shape(64, 112, 112)]) == Shape(64, 56, 56)


def test_avgpool_has_no_params():
    pool = AvgPool2d("p", 3, stride=1, pad=1)
    assert pool.param_arrays([Shape(16, 8, 8)]) == ()
    assert not pool.param_arrays_possible()


def test_global_avgpool_flattens():
    gap = GlobalAvgPool("g")
    assert gap.infer_shape([Shape(2048, 7, 7)]) == Shape(2048)


def test_global_avgpool_rejects_flat():
    with pytest.raises(ShapeError):
        GlobalAvgPool("g").infer_shape([Shape(2048)])


# ----------------------------------------------------------------------
# Dense / Flatten
# ----------------------------------------------------------------------
def test_dense_shape_and_params():
    fc = Dense("fc", 4096)
    x = Shape(9216)
    assert fc.infer_shape([x]) == Shape(4096)
    assert fc.param_count([x]) == 9216 * 4096 + 4096


def test_dense_flops():
    fc = Dense("fc", 10)
    x = Shape(100)
    assert fc.forward_flops([x], Shape(10)) == 2 * 100 * 10
    assert fc.backward_flops([x], Shape(10)) == 4 * 100 * 10


def test_dense_accepts_spatial_input():
    """MXNet FullyConnected implicitly flattens."""
    fc = Dense("fc", 10)
    assert fc.infer_shape([Shape(16, 5, 5)]) == Shape(10)
    assert fc.param_count([Shape(16, 5, 5)]) == 400 * 10 + 10


def test_flatten_zero_cost():
    f = Flatten("f")
    x = Shape(16, 5, 5)
    assert f.infer_shape([x]) == Shape(400)
    assert f.forward_flops([x], Shape(400)) == 0.0
    assert f.backward_kernel_count() == 0


# ----------------------------------------------------------------------
# Activations, norm, merge
# ----------------------------------------------------------------------
def test_activation_preserves_shape():
    act = Activation("a", "relu")
    assert act.infer_shape([Shape(64, 8, 8)]) == Shape(64, 8, 8)


def test_activation_costs_ordered():
    x, out = Shape(1000), Shape(1000)
    relu = Activation("r", "relu").forward_flops([x], out)
    sigmoid = Activation("s", "sigmoid").forward_flops([x], out)
    tanh = Activation("t", "tanh").forward_flops([x], out)
    assert relu < sigmoid < tanh


def test_unknown_activation_rejected():
    with pytest.raises(ValueError):
        Activation("a", "swish")


def test_batchnorm_params_per_channel():
    bn = BatchNorm("bn")
    arrays = bn.param_arrays([Shape(64, 8, 8)])
    assert [a.numel for a in arrays] == [64, 64]


def test_lrn_no_params():
    assert LRN("l").param_arrays([Shape(64, 8, 8)]) == ()


def test_dropout_rate_validation():
    with pytest.raises(ValueError):
        Dropout("d", rate=1.0)
    with pytest.raises(ValueError):
        Dropout("d", rate=-0.1)


def test_softmax_shape():
    assert Softmax("s").infer_shape([Shape(1000)]) == Shape(1000)


def test_concat_sums_channels():
    c = Concat("c")
    out = c.infer_shape([Shape(64, 28, 28), Shape(32, 28, 28), Shape(96, 28, 28)])
    assert out == Shape(192, 28, 28)


def test_concat_rejects_mismatched_spatial():
    with pytest.raises(ShapeError):
        Concat("c").infer_shape([Shape(64, 28, 28), Shape(64, 14, 14)])


def test_concat_needs_two_inputs():
    with pytest.raises(ShapeError):
        Concat("c").infer_shape([Shape(64, 28, 28)])


def test_add_requires_matching_shapes():
    add = Add("a")
    assert add.infer_shape([Shape(256, 56, 56)] * 2) == Shape(256, 56, 56)
    with pytest.raises(ShapeError):
        add.infer_shape([Shape(256, 56, 56), Shape(128, 56, 56)])


def test_add_arity_checked():
    with pytest.raises(ShapeError):
        Add("a").infer_shape([Shape(8, 2, 2)])


def test_layer_requires_name():
    with pytest.raises(ValueError):
        Conv2d("", 8, 3)
