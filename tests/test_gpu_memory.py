"""Tests for the memory model against the paper's Table IV findings."""

import pytest

from repro.core.errors import OutOfMemoryError
from repro.dnn import build_network, compile_network, network_input_shape
from repro.gpu import MemoryModel


@pytest.fixture(scope="module")
def model():
    return MemoryModel()


@pytest.fixture(scope="module")
def stats():
    return {
        name: compile_network(build_network(name), network_input_shape(name))
        for name in ("lenet", "alexnet", "resnet", "googlenet", "inception-v3")
    }


def test_pretraining_identical_structure(model, stats):
    """Pre-training usage = context + one copy of the model."""
    for s in stats.values():
        usage = model.pretraining(s)
        assert usage.parameters == s.model_bytes
        assert usage.activations == 0
        assert usage.server_buffers == 0


def test_pretraining_much_smaller_than_training(model, stats):
    for s in stats.values():
        pre = model.pretraining(s).total
        train = model.training(s, 64).total
        assert pre < train


def test_training_grows_with_batch(model, stats):
    for s in stats.values():
        totals = [model.training(s, b).total for b in (16, 32, 64)]
        assert totals[0] < totals[1] < totals[2]


def test_server_uses_more_than_worker(model, stats):
    for s in stats.values():
        gpu0 = model.training(s, 32, is_server=True).total
        gpux = model.training(s, 32, is_server=False).total
        assert gpu0 > gpux
        assert gpu0 - gpux == 2 * s.model_bytes


def test_server_extra_share_shrinks_with_batch(model, stats):
    """Paper: GPU0's relative extra usage decreases as batch grows."""
    for s in stats.values():
        shares = []
        for b in (16, 32, 64):
            gpu0 = model.training(s, b, is_server=True).total
            gpux = model.training(s, b, is_server=False).total
            shares.append(gpu0 / gpux - 1.0)
        assert shares[0] >= shares[1] >= shares[2]


def test_alexnet_b64_gpu0_anchor(model, stats):
    """Paper: 2.37 GB on GPU0 for AlexNet at batch 64."""
    usage = model.training(stats["alexnet"], 64, is_server=True)
    assert usage.total_gb == pytest.approx(2.37, rel=0.08)


def test_inception_b64_gpu0_anchor(model, stats):
    """Paper: ~11 GB on GPU0 for Inception-v3 at batch 64."""
    usage = model.training(stats["inception-v3"], 64, is_server=True)
    assert usage.total_gb == pytest.approx(11.0, rel=0.15)


def test_inception_resnet_oom_above_64(model, stats):
    for name in ("inception-v3", "resnet"):
        model.check_fits(stats[name], 64)  # trains
        with pytest.raises(OutOfMemoryError):
            model.check_fits(stats[name], 128)


def test_googlenet_trains_at_128(model, stats):
    model.check_fits(stats["googlenet"], 128)


def test_lenet_never_oom_at_paper_batches(model, stats):
    for b in (16, 32, 64, 128, 256):
        model.check_fits(stats["lenet"], b)


def test_max_batch_size_consistency(model, stats):
    for s in stats.values():
        limit = model.max_batch_size(s)
        model.check_fits(s, limit)
        if limit < 4096:  # 4096 is the search cap, not an OOM boundary
            with pytest.raises(OutOfMemoryError):
                model.check_fits(s, limit + 1)


def test_max_batch_respects_limit_argument(model, stats):
    assert model.max_batch_size(stats["lenet"], limit=64) == 64


def test_oom_error_details(model, stats):
    with pytest.raises(OutOfMemoryError) as exc:
        model.check_fits(stats["inception-v3"], 256)
    assert exc.value.requested > exc.value.free


def test_workspace_capped_per_op(model, stats):
    s = stats["inception-v3"]
    ws_small = model.workspace_bytes(s, 1)
    ws_large = model.workspace_bytes(s, 4096)
    cap = model.constants.cudnn_per_op_workspace_cap
    n_convs = len(s.conv_im2col_bytes_per_sample)
    assert ws_large <= cap * n_convs
    assert ws_small < ws_large


def test_usage_breakdown_sums(model, stats):
    usage = model.training(stats["alexnet"], 32, is_server=True)
    assert usage.total == (
        usage.context
        + usage.parameters
        + usage.activations
        + usage.workspace
        + usage.input_batch
        + usage.server_buffers
    )
