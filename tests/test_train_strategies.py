"""Tests for the training-strategy registry (repro.train.strategies)."""

import dataclasses
import warnings

import pytest

from repro.analysis.serialization import result_from_dict, result_to_dict
from repro.core.config import CommMethodName, SimulationConfig, TrainingConfig
from repro.core.errors import ConfigurationError, FaultPlanError
from repro.faults import FaultPlan, StragglerFault
from repro.train import (
    AsyncTrainer,
    available_strategies,
    get_strategy,
    strategy_for,
    train,
)
from repro.train.strategies import AUTO_STRATEGY

FAST = SimulationConfig(warmup_iterations=1, measure_iterations=2)

#: strategy -> the comm_method its validation matrix requires.
COMM_OF = {
    "p2p-tree": CommMethodName.P2P,
    "nccl-collective": CommMethodName.NCCL,
    "nccl-allreduce-replicated": CommMethodName.NCCL_ALLREDUCE,
    "ps-cpu": CommMethodName.LOCAL,
    "ps-gpu": CommMethodName.P2P,
    "async-update": CommMethodName.P2P,
    "model-parallel": CommMethodName.P2P,
}


def _config(strategy, network="lenet", batch=16, gpus=4, **kw):
    return TrainingConfig(network, batch, gpus,
                          comm_method=COMM_OF[strategy],
                          strategy=strategy, **kw)


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
def test_all_seven_strategies_registered():
    assert available_strategies() == tuple(sorted(COMM_OF))


def test_unknown_strategy_is_loud():
    with pytest.raises(ConfigurationError, match="unknown strategy"):
        get_strategy("hogwild")
    with pytest.raises(ConfigurationError, match="unknown strategy"):
        TrainingConfig("lenet", 16, 4, strategy="hogwild")


@pytest.mark.parametrize("comm,expected", sorted(
    AUTO_STRATEGY.items(), key=lambda kv: kv[0].value))
def test_auto_resolves_to_the_matching_sync_strategy(comm, expected):
    config = TrainingConfig("lenet", 16, 4, comm_method=comm)
    assert config.strategy == "auto"
    assert strategy_for(config).name == expected


def test_explicit_name_round_trips_through_describe():
    config = _config("ps-gpu")
    assert config.describe().endswith("/ps-gpu")
    # "auto" stays silent so pre-registry labels are unchanged.
    assert not TrainingConfig("lenet", 16, 4).describe().endswith("/auto")


# ----------------------------------------------------------------------
# Validation matrix (strategy x comm x topology) -- the config.py bugfix
# ----------------------------------------------------------------------
def test_strategy_comm_mismatch_is_rejected():
    with pytest.raises(ConfigurationError, match="runs over comm_method"):
        TrainingConfig("lenet", 16, 4, comm_method=CommMethodName.NCCL,
                       strategy="ps-gpu")
    with pytest.raises(ConfigurationError, match="docs/TRAINING.md"):
        TrainingConfig("lenet", 16, 4, comm_method=CommMethodName.P2P,
                       strategy="nccl-collective")


def test_multi_node_requires_a_nccl_strategy():
    """The old string check only spelled out NCCL; the matrix names the
    strategy and the single-node modeling assumption explicitly."""
    with pytest.raises(ConfigurationError) as err:
        TrainingConfig("lenet", 16, 4, comm_method=CommMethodName.LOCAL,
                       cluster_nodes=2)
    message = str(err.value)
    assert "single DGX-1 node" in message
    assert "'ps-cpu'" in message
    assert "cluster_nodes=2" in message
    # P2P auto-resolves to p2p-tree, also single-node only.
    with pytest.raises(ConfigurationError, match="single DGX-1 node"):
        TrainingConfig("lenet", 16, 4, comm_method=CommMethodName.P2P,
                       cluster_nodes=4)


@pytest.mark.parametrize("comm", [CommMethodName.NCCL,
                                  CommMethodName.NCCL_ALLREDUCE])
def test_nccl_strategies_span_nodes(comm):
    config = TrainingConfig("lenet", 16, 4, comm_method=comm,
                            cluster_nodes=2)
    assert strategy_for(config).multi_node


# ----------------------------------------------------------------------
# Byte-identity: "auto" is exactly the pre-registry trainer
# ----------------------------------------------------------------------
@pytest.mark.parametrize("comm", [CommMethodName.P2P, CommMethodName.NCCL,
                                  CommMethodName.NCCL_ALLREDUCE,
                                  CommMethodName.LOCAL])
def test_auto_equals_explicit_strategy(comm):
    auto = train(TrainingConfig("lenet", 16, 4, comm_method=comm), sim=FAST)
    name = AUTO_STRATEGY[comm]
    explicit = train(TrainingConfig("lenet", 16, 4, comm_method=comm,
                                    strategy=name), sim=FAST)
    assert explicit.iteration_times == auto.iteration_times
    assert explicit.epoch_time == auto.epoch_time
    assert explicit.stages == auto.stages
    assert explicit.apis == auto.apis
    assert explicit.gpu_busy == auto.gpu_busy


# ----------------------------------------------------------------------
# Every strategy runs end-to-end and round-trips through schema v5
# ----------------------------------------------------------------------
@pytest.mark.parametrize("strategy", sorted(COMM_OF))
def test_every_strategy_round_trips_through_the_v5_schema(strategy):
    result = train(_config(strategy), sim=FAST)
    back = result_from_dict(result_to_dict(result))
    assert back.config == result.config
    assert back.config.strategy == strategy
    assert back.iteration_times == result.iteration_times
    assert back.epoch_time == result.epoch_time
    assert back.async_stats == result.async_stats
    if strategy == "async-update":
        assert back.async_stats is not None
        assert back.async_stats.server_updates > 0
        assert back.async_stats.staleness_samples
    else:
        assert back.async_stats is None


# ----------------------------------------------------------------------
# Fault contract: sync strategies recover, the others refuse loudly
# ----------------------------------------------------------------------
PLAN = FaultPlan(stragglers=(StragglerFault(gpu=1, factor=1.5, at=0.0),))

SYNC = ("p2p-tree", "nccl-collective", "nccl-allreduce-replicated",
        "ps-cpu", "ps-gpu")


@pytest.mark.parametrize("strategy", SYNC)
def test_sync_strategies_run_under_fault_injection(strategy):
    result = train(_config(strategy), sim=FAST, faults=PLAN)
    assert result.faults is not None
    assert result.faults.segments
    semantics = get_strategy(strategy).recovery_semantics()
    assert semantics.supports_faults
    assert semantics.ring_rebuild == strategy.startswith("nccl")


@pytest.mark.parametrize("strategy", ["async-update", "model-parallel"])
def test_non_segment_strategies_reject_fault_plans(strategy):
    semantics = get_strategy(strategy).recovery_semantics()
    assert not semantics.supports_faults
    with pytest.raises(FaultPlanError, match="no fault-recovery semantics"):
        train(_config(strategy), sim=FAST, faults=PLAN)


# ----------------------------------------------------------------------
# AsyncTrainer is a thin wrapper over the registry
# ----------------------------------------------------------------------
def test_async_trainer_matches_the_async_update_strategy():
    config = _config("async-update")
    via_registry = train(config, sim=FAST)
    legacy = AsyncTrainer(dataclasses.replace(config, strategy="auto"),
                          sim=FAST).run()
    assert legacy.iteration_time == via_registry.iteration_time
    assert legacy.epoch_time == via_registry.epoch_time
    assert legacy.staleness_samples == \
        via_registry.async_stats.staleness_samples
    assert legacy.server_updates == via_registry.async_stats.server_updates


def test_model_parallel_strategy_matches_the_estimator():
    from repro.train import ModelParallelEstimator

    config = _config("model-parallel")
    via_registry = train(config, sim=FAST)
    direct = ModelParallelEstimator(config).run()
    assert via_registry.iteration_time == direct.iteration_time
    assert via_registry.epoch_time == direct.epoch_time


# ----------------------------------------------------------------------
# Deprecated entry points warn once, then keep working
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name", ["train_async", "train_model_parallel"])
def test_deprecated_imports_warn_once(name):
    # repro.train the *module*: ``import repro.train`` resolves to the
    # ``train`` function re-exported at the top level.
    import sys

    pkg = sys.modules["repro.train"]
    saved = set(pkg._warned)
    pkg._warned.discard(name)
    try:
        with pytest.warns(DeprecationWarning, match="strategy registry"):
            fn = getattr(pkg, name)
        assert callable(fn)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert getattr(pkg, name) is fn
    finally:
        pkg._warned.clear()
        pkg._warned.update(saved)


def test_unknown_attribute_still_raises():
    import sys

    pkg = sys.modules["repro.train"]
    with pytest.raises(AttributeError):
        pkg.no_such_thing
