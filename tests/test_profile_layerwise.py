"""Tests for the layer-wise profiling summary."""

import pytest

from repro import CommMethodName, SimulationConfig, TrainingConfig
from repro.gpu.kernel import KernelSpec
from repro.profile import Profiler, render_layerwise, summarize_layers
from repro.train import Trainer


def _kernel(layer, stage, duration):
    return KernelSpec(name=f"{layer}.{stage}", layer=layer, stage=stage,
                      duration=duration, flops=0.0, bytes_moved=0)


@pytest.fixture()
def profiler():
    p = Profiler()
    p.record_kernel(0, _kernel("conv1", "fp", 1.0), 0.0, 1.0)
    p.record_kernel(0, _kernel("conv1", "bp", 2.0), 1.0, 3.0)
    p.record_kernel(0, _kernel("fc", "fp", 0.5), 3.0, 3.5)
    p.record_kernel(0, _kernel("fc", "wu", 0.25), 3.5, 3.75)
    p.record_kernel(1, _kernel("conv1", "fp", 1.0), 0.0, 1.0)
    return p


def test_aggregation_by_layer(profiler):
    summary = summarize_layers(profiler)
    conv = summary.of("conv1")
    assert conv.fp_time == pytest.approx(2.0)   # both GPUs
    assert conv.bp_time == pytest.approx(2.0)
    assert conv.kernel_count == 3
    fc = summary.of("fc")
    assert fc.wu_time == pytest.approx(0.25)


def test_sorted_descending(profiler):
    summary = summarize_layers(profiler)
    totals = [p.total for p in summary.profiles]
    assert totals == sorted(totals, reverse=True)
    assert summary.profiles[0].layer == "conv1"


def test_gpu_filter(profiler):
    summary = summarize_layers(profiler, gpu=1)
    assert summary.of("conv1").fp_time == pytest.approx(1.0)
    with pytest.raises(KeyError):
        summary.of("fc")


def test_share_and_top(profiler):
    summary = summarize_layers(profiler)
    assert summary.share("conv1") + summary.share("fc") == pytest.approx(1.0)
    assert len(summary.top(1)) == 1


def test_empty_profiler():
    summary = summarize_layers(Profiler())
    assert summary.profiles == ()
    assert summary.total_time == 0.0


def test_render(profiler):
    text = render_layerwise(summarize_layers(profiler), top_k=5)
    assert "conv1" in text and "Share" in text


def test_end_to_end_alexnet_hotspots():
    """AlexNet's compute is conv-dominated; its WU is FC-dominated."""
    trainer = Trainer(
        TrainingConfig("alexnet", 32, 1, comm_method=CommMethodName.P2P),
        sim=SimulationConfig(1, 1),
        keep_profiler=True,
    )
    result = trainer.run()
    summary = summarize_layers(result.profiler)
    conv_compute = sum(
        p.fp_time + p.bp_time for p in summary.profiles if p.layer.startswith("conv")
    )
    fc_compute = sum(
        p.fp_time + p.bp_time for p in summary.profiles if p.layer.startswith("fc")
    )
    assert conv_compute > fc_compute
    fc_wu = sum(p.wu_time for p in summary.profiles if p.layer.startswith("fc"))
    conv_wu = sum(p.wu_time for p in summary.profiles if p.layer.startswith("conv"))
    assert fc_wu > conv_wu  # 59M of AlexNet's 61M weights sit in the FCs
