"""Tests for SystemTopology construction and lookup helpers."""

import pytest

from repro.core.constants import CALIBRATION
from repro.core.errors import ConfigurationError
from repro.topology import build_dgx1v
from repro.topology.links import Link, LinkType, PEAK_BANDWIDTH
from repro.topology.nodes import CpuNode, GpuNode, NodeKind, SwitchNode
from repro.topology.system import SystemTopology


@pytest.fixture(scope="module")
def topo():
    return build_dgx1v()


# ----------------------------------------------------------------------
# Construction validation
# ----------------------------------------------------------------------
def test_duplicate_node_rejected():
    g = GpuNode.named(0)
    with pytest.raises(ConfigurationError):
        SystemTopology("t", [g, GpuNode.named(0)], [])


def test_link_to_unknown_node_rejected():
    a, b = GpuNode.named(0), GpuNode.named(1)
    link = Link(a, b, LinkType.NVLINK)
    with pytest.raises(ConfigurationError):
        SystemTopology("t", [a], [link])


def test_duplicate_link_rejected():
    a, b = GpuNode.named(0), GpuNode.named(1)
    links = [Link(a, b, LinkType.NVLINK), Link(b, a, LinkType.NVLINK)]
    with pytest.raises(ConfigurationError):
        SystemTopology("t", [a, b], links)


def test_self_link_rejected():
    a = GpuNode.named(0)
    with pytest.raises(ValueError):
        Link(a, a, LinkType.NVLINK)


def test_invalid_width_rejected():
    a, b = GpuNode.named(0), GpuNode.named(1)
    with pytest.raises(ValueError):
        Link(a, b, LinkType.NVLINK, width=0)


def test_invalid_lane_bandwidth_rejected():
    a, b = GpuNode.named(0), GpuNode.named(1)
    with pytest.raises(ValueError):
        Link(a, b, LinkType.NVLINK, lane_bandwidth=-1.0)


# ----------------------------------------------------------------------
# Lookup helpers
# ----------------------------------------------------------------------
def test_node_lookup(topo):
    assert topo.node("gpu3").kind is NodeKind.GPU
    assert topo.node("cpu1").kind is NodeKind.CPU
    with pytest.raises(ConfigurationError):
        topo.node("gpu9")


def test_gpu_and_cpu_accessors(topo):
    assert topo.gpu(5).index == 5
    assert topo.cpu(1).socket == 1
    assert [g.index for g in topo.gpus] == list(range(8))
    assert [c.socket for c in topo.cpus] == [0, 1]


def test_link_between_is_symmetric(topo):
    a, b = topo.gpu(0), topo.gpu(1)
    assert topo.link_between(a, b) is topo.link_between(b, a)
    assert topo.link_between(a, topo.gpu(5)) is None


def test_nvlink_between_ignores_pcie(topo):
    gpu = topo.gpu(0)
    switch = next(n for n in topo.nodes if isinstance(n, SwitchNode))
    if topo.link_between(gpu, switch) is not None:
        assert topo.nvlink_between(gpu, switch) is None


def test_nvlink_neighbors_sorted(topo):
    neighbors = topo.nvlink_neighbors(topo.gpu(0))
    names = [n.name for n in neighbors]
    assert names == sorted(names)
    assert len(names) == 4


def test_links_of_counts_all_attachments(topo):
    links = topo.links_of(topo.gpu(0))
    kinds = [l.link_type for l in links]
    assert kinds.count(LinkType.NVLINK) == 4
    assert kinds.count(LinkType.PCIE) == 1


def test_link_other_endpoint(topo):
    link = topo.link_between(topo.gpu(0), topo.gpu(1))
    assert link.other(topo.gpu(0)) == topo.gpu(1)
    assert link.other(topo.gpu(1)) == topo.gpu(0)
    with pytest.raises(ValueError):
        link.other(topo.gpu(5))


def test_link_name_encodes_structure(topo):
    link = topo.link_between(topo.gpu(0), topo.gpu(3))
    assert link.name == "gpu0<->gpu3:nvlinkx2"


def test_effective_bandwidth_below_peak(topo):
    for link in topo.links:
        assert link.effective_bandwidth(CALIBRATION) < link.peak_bandwidth()
        assert link.latency(CALIBRATION) > 0


def test_peak_bandwidth_table():
    assert PEAK_BANDWIDTH[LinkType.NVLINK] == 25e9
    assert PEAK_BANDWIDTH[LinkType.PCIE] == 16e9


def test_graph_read_access(topo):
    assert topo.graph.number_of_nodes() == len(topo.nodes)
    assert topo.graph.number_of_edges() == len(topo.links)
