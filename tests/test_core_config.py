"""Tests for run-level configuration objects."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.config import (
    PAPER_DATASET_IMAGES,
    CommMethodName,
    ScalingMode,
    SimulationConfig,
    TrainingConfig,
)
from repro.core.errors import ConfigurationError


def test_defaults():
    c = TrainingConfig("lenet", 16, 4)
    assert c.comm_method is CommMethodName.NCCL
    assert c.scaling is ScalingMode.STRONG
    assert c.dataset_images == PAPER_DATASET_IMAGES
    assert c.overlap_bp_wu


@pytest.mark.parametrize("batch", [0, -1])
def test_invalid_batch_rejected(batch):
    with pytest.raises(ConfigurationError):
        TrainingConfig("lenet", batch, 1)


@pytest.mark.parametrize("gpus", [0, -2, 9, 16])
def test_invalid_gpu_count_rejected(gpus):
    with pytest.raises(ConfigurationError):
        TrainingConfig("lenet", 16, gpus)


def test_invalid_dataset_rejected():
    with pytest.raises(ConfigurationError):
        TrainingConfig("lenet", 16, 1, dataset_images=0)


def test_global_batch_size():
    assert TrainingConfig("lenet", 32, 4).global_batch_size == 128


def test_iterations_per_epoch_strong():
    c = TrainingConfig("lenet", 16, 8, dataset_images=256 * 1024)
    assert c.iterations_per_epoch == 256 * 1024 // (16 * 8)


def test_iterations_per_epoch_rounds_up():
    c = TrainingConfig("lenet", 100, 1, dataset_images=250)
    assert c.iterations_per_epoch == 3


def test_weak_scaling_grows_dataset():
    strong = TrainingConfig("lenet", 16, 4, scaling=ScalingMode.STRONG)
    weak = TrainingConfig("lenet", 16, 4, scaling=ScalingMode.WEAK)
    assert weak.total_images == 4 * strong.total_images
    # per-GPU iteration count matches the single-GPU strong run
    assert weak.iterations_per_epoch == strong.iterations_per_epoch * 4


def test_describe_tag():
    c = TrainingConfig("alexnet", 32, 4, comm_method=CommMethodName.P2P)
    assert c.describe() == "alexnet/b32/g4/p2p"


@given(
    batch=st.sampled_from([16, 32, 64]),
    gpus=st.sampled_from([1, 2, 4, 8]),
    images=st.integers(min_value=1, max_value=10**7),
)
def test_iterations_cover_dataset_property(batch, gpus, images):
    """iterations * global_batch always covers the dataset exactly once."""
    c = TrainingConfig("lenet", batch, gpus, dataset_images=images)
    covered = c.iterations_per_epoch * c.global_batch_size
    assert covered >= c.total_images
    assert covered - c.total_images < c.global_batch_size


def test_simulation_config_validation():
    with pytest.raises(ConfigurationError):
        SimulationConfig(warmup_iterations=-1)
    with pytest.raises(ConfigurationError):
        SimulationConfig(measure_iterations=0)


def test_comm_method_round_trip():
    assert CommMethodName("p2p") is CommMethodName.P2P
    assert str(CommMethodName.NCCL) == "nccl"


# ----------------------------------------------------------------------
# Eager construction-time validation (fail fast, actionable messages)
# ----------------------------------------------------------------------
def test_unknown_network_rejected_eagerly():
    with pytest.raises(ConfigurationError) as exc:
        TrainingConfig("resnet-50", 16, 1)
    assert "resnet-50" in str(exc.value)
    assert "available" in str(exc.value)  # lists valid choices


def test_custom_network_flag_bypasses_zoo_lookup():
    config = TrainingConfig("hand-built", 16, 1, custom_network=True)
    assert config.custom_network


def test_unknown_optimizer_rejected_eagerly():
    with pytest.raises(ConfigurationError) as exc:
        TrainingConfig("lenet", 16, 1, optimizer="rmsprop")
    assert "rmsprop" in str(exc.value)
    assert "available" in str(exc.value)


def test_unsupported_gpu_count_message_is_actionable():
    with pytest.raises(ConfigurationError) as exc:
        TrainingConfig("lenet", 16, 9)
    message = str(exc.value)
    assert "num_gpus=9" in message
    assert "cluster_nodes" in message  # tells the user how to fix it


def test_incompatible_nccl_tuning_combo_rejected():
    with pytest.raises(ConfigurationError):
        TrainingConfig("lenet", 16, 2, nccl_algorithm="compat",
                       nccl_protocol="simple")
    with pytest.raises(ConfigurationError):
        TrainingConfig("lenet", 16, 2, nccl_algorithm="ring",
                       nccl_protocol="compat")
    with pytest.raises(ConfigurationError):
        TrainingConfig("lenet", 16, 2, nccl_algorithm="butterfly",
                       nccl_protocol="simple")


def test_nonpositive_batch_and_gpus_rejected():
    with pytest.raises(ConfigurationError):
        TrainingConfig("lenet", 0, 1)
    with pytest.raises(ConfigurationError):
        TrainingConfig("lenet", -4, 1)
    with pytest.raises(ConfigurationError):
        TrainingConfig("lenet", 16, 0)
