"""Tests for multi-node training configuration and the scaling study."""

import pytest

from repro import CommMethodName, SimulationConfig, TrainingConfig, train
from repro.core.errors import ConfigurationError
from repro.experiments import multinode_study

FAST = SimulationConfig(warmup_iterations=1, measure_iterations=2)


def test_config_accepts_multi_node_gpu_counts():
    c = TrainingConfig("resnet", 32, 16, comm_method=CommMethodName.NCCL,
                       cluster_nodes=2)
    assert c.global_batch_size == 512
    assert "n2" in c.describe()


def test_config_rejects_too_many_gpus_per_node():
    with pytest.raises(ConfigurationError):
        TrainingConfig("resnet", 32, 16, comm_method=CommMethodName.NCCL)


def test_config_rejects_non_nccl_multi_node():
    for method in (CommMethodName.P2P, CommMethodName.LOCAL):
        with pytest.raises(ConfigurationError):
            TrainingConfig("resnet", 32, 16, comm_method=method, cluster_nodes=2)


def test_config_rejects_invalid_node_count():
    with pytest.raises(ConfigurationError):
        TrainingConfig("resnet", 32, 8, cluster_nodes=0)


def test_single_node_describe_unchanged():
    c = TrainingConfig("resnet", 32, 8, comm_method=CommMethodName.NCCL)
    assert c.describe() == "resnet/b32/g8/nccl"


def test_two_node_training_runs():
    r = train(
        TrainingConfig("resnet", 32, 16, comm_method=CommMethodName.NCCL,
                       cluster_nodes=2),
        sim=FAST,
    )
    assert r.epoch_time > 0
    assert set(r.gpu_busy) == set(range(16))


def test_multi_node_throughput_scales_sublinearly():
    one = train(TrainingConfig("resnet", 32, 8, comm_method=CommMethodName.NCCL),
                sim=FAST)
    two = train(
        TrainingConfig("resnet", 32, 16, comm_method=CommMethodName.NCCL,
                       cluster_nodes=2),
        sim=FAST,
    )
    gain = two.images_per_second / one.images_per_second
    assert 1.3 < gain < 2.0  # more GPUs help, IB takes its cut


def test_ib_crossing_raises_wu_cost():
    one = train(TrainingConfig("inception-v3", 32, 8,
                               comm_method=CommMethodName.NCCL), sim=FAST)
    two = train(
        TrainingConfig("inception-v3", 32, 16,
                       comm_method=CommMethodName.NCCL, cluster_nodes=2),
        sim=FAST,
    )
    assert two.stages.wu > one.stages.wu


def test_multinode_study_structure():
    result = multinode_study.run(networks=("resnet",), node_counts=(1, 2),
                                 sim=FAST)
    assert result.scaling("resnet", 1) == pytest.approx(1.0)
    assert 1.0 < result.scaling("resnet", 2) < 2.0
    with pytest.raises(KeyError):
        result.row("resnet", 8)
    text = multinode_study.render(result)
    assert "InfiniBand" in text
