"""Tests for the table renderer."""

import pytest

from repro.experiments.tables import render_csv, render_table


def test_alignment():
    text = render_table(["Name", "Value"], [("a", 1), ("long-name", 22)])
    lines = text.splitlines()
    assert lines[0].startswith("Name")
    assert lines[-1].endswith("22")
    # header separator spans the header width
    assert set(lines[1]) == {"-"}


def test_title_included():
    text = render_table(["A"], [(1,)], title="My Table")
    assert text.startswith("My Table\n")


def test_row_width_mismatch_rejected():
    with pytest.raises(ValueError):
        render_table(["A", "B"], [(1,)])


def test_float_formatting():
    text = render_table(["V"], [(0.12345,), (3.14159,), (123.456,), (0.0,)])
    assert "0.1235" in text or "0.1234" in text
    assert "3.14" in text
    assert "123.5" in text


def test_csv_output():
    csv = render_csv(["a", "b"], [(1, 2), (3, 4)])
    assert csv == "a,b\n1,2\n3,4\n"


def test_left_and_right_alignment():
    text = render_table(["Key", "N"], [("x", 5), ("yy", 100)])
    lines = text.splitlines()
    # left column is left-aligned, right column right-aligned
    assert lines[2].startswith("x ")
    assert lines[2].rstrip().endswith("5")


def test_max_col_width_clips_cells():
    from repro.experiments.tables import render_table

    text = render_table(
        ["A", "Long header that exceeds the cap"],
        [("short", "a very long cell value that must be clipped")],
        max_col_width=10,
    )
    for line in text.splitlines():
        if "|" in line:
            assert all(len(cell.strip()) <= 10 for cell in line.split("|"))
    assert ".." in text  # clipped cells carry the ellipsis marker


def test_max_col_width_must_fit_ellipsis():
    import pytest

    from repro.experiments.tables import render_table

    with pytest.raises(ValueError):
        render_table(["A"], [("x",)], max_col_width=2)
