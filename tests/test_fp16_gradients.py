"""Tests for half-precision gradient communication."""

import pytest

from repro import CommMethodName, SimulationConfig, TrainingConfig, train
from repro.comm import P2PCommunicator
from repro.core.constants import CALIBRATION
from repro.dnn.stats import WeightArray
from repro.gpu import GpuDevice, KernelCostModel
from repro.profile import Profiler
from repro.sim import Environment
from repro.topology import Fabric, build_dgx1v

FAST = SimulationConfig(warmup_iterations=1, measure_iterations=2)


def test_invalid_scale_rejected():
    env = Environment()
    topo = build_dgx1v()
    fabric = Fabric(env, topo, CALIBRATION)
    devices = [GpuDevice(env, topo.gpu(0))]
    for bad in (0.0, -0.5, 1.5):
        with pytest.raises(ValueError):
            P2PCommunicator(env, fabric, devices, KernelCostModel(),
                            CALIBRATION, gradient_bytes_scale=bad)


def test_fp16_halves_wire_bytes():
    profiler = Profiler()
    env = Environment()
    topo = build_dgx1v()
    fabric = Fabric(env, topo, CALIBRATION)
    devices = [GpuDevice(env, topo.gpu(i), profiler=profiler) for i in range(2)]
    comm = P2PCommunicator(env, fabric, devices, KernelCostModel(),
                           CALIBRATION, profiler, gradient_bytes_scale=0.5)
    array = WeightArray(0, "w", 100_000, "l")
    done = env.process(comm.sync_array(array))
    env.run(until=done)
    assert sum(fabric.bytes_moved.values()) == array.nbytes  # 2 x half

def test_fp16_speeds_up_comm_bound_training():
    full = train(TrainingConfig("alexnet", 16, 8, comm_method=CommMethodName.NCCL),
                 sim=FAST)
    half = train(TrainingConfig("alexnet", 16, 8, comm_method=CommMethodName.NCCL,
                                fp16_gradients=True), sim=FAST)
    assert half.epoch_time < 0.85 * full.epoch_time


def test_fp16_negligible_for_compute_bound_training():
    full = train(TrainingConfig("inception-v3", 16, 8,
                                comm_method=CommMethodName.NCCL), sim=FAST)
    half = train(TrainingConfig("inception-v3", 16, 8,
                                comm_method=CommMethodName.NCCL,
                                fp16_gradients=True), sim=FAST)
    assert half.epoch_time <= full.epoch_time
    assert half.epoch_time > 0.9 * full.epoch_time


def test_fp16_works_for_every_method():
    for method in (CommMethodName.P2P, CommMethodName.NCCL, CommMethodName.LOCAL):
        r = train(TrainingConfig("lenet", 16, 4, comm_method=method,
                                 fp16_gradients=True), sim=FAST)
        assert r.epoch_time > 0
