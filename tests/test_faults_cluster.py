"""Cluster-tier fault tests: rail/node primitives, re-rail algebra,
eager plan validation, the fault-aware fast path, and recovery
determinism (hypothesis-driven where the property is closed-form)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.comm.nccl import rail_assignment, rail_bytes
from repro.core.config import CommMethodName, SimulationConfig, TrainingConfig
from repro.core.errors import FaultPlanError
from repro.faults import (
    FaultPlan,
    NodeCrashFault,
    NodeStragglerFault,
    RailFault,
    ResiliencePolicy,
    StragglerFault,
)
from repro.runner import SweepPoint, SweepRunner, SweepSpec
from repro.train import Trainer
from repro.train.strategies import resolve_fast_path

FAST = SimulationConfig(warmup_iterations=0, measure_iterations=2)


def cluster_config(nodes=2, fast_path="auto", network="lenet"):
    return TrainingConfig(
        network, 16, 8 * nodes,
        comm_method=CommMethodName.NCCL_ALLREDUCE,
        cluster_nodes=nodes,
        cluster_fabric="single-switch",
        cluster_collective="hierarchical-ring",
        cluster_fast_path=fast_path,
    )


# ----------------------------------------------------------------------
# Plan primitives
# ----------------------------------------------------------------------
def test_rail_fault_validation():
    with pytest.raises(FaultPlanError):
        RailFault(node=-1, rail=0)
    with pytest.raises(FaultPlanError):
        RailFault(node=0, rail=0, bandwidth_scale=1.0)   # no-op scale
    with pytest.raises(FaultPlanError):
        RailFault(node=0, rail=0, at=5.0, until=5.0)     # empty window
    with pytest.raises(FaultPlanError):
        NodeStragglerFault(node=0, factor=0.0)
    with pytest.raises(FaultPlanError):
        NodeCrashFault(node=0, at_iteration=-1)


def test_cluster_fault_labels():
    assert RailFault(1, 2).label() == "rail:n1r2:down@0s"
    assert RailFault(0, 3, at=2.0, bandwidth_scale=0.5).label() == \
        "rail:n0r3:x0.5@2s"
    assert NodeStragglerFault(1, 1.5).label() == "node-straggler:n1:x1.5@0s"
    assert NodeCrashFault(1, 40).label() == "node-crash:n1@iter40"


def test_at_most_one_crash_across_granularities():
    from repro.faults import CrashFault

    with pytest.raises(FaultPlanError):
        FaultPlan(node_crashes=(NodeCrashFault(0, 5), NodeCrashFault(1, 9)))
    with pytest.raises(FaultPlanError):
        FaultPlan(crashes=(CrashFault(gpu=0, at_iteration=5),),
                  node_crashes=(NodeCrashFault(1, 9),))


@given(st.integers(min_value=0, max_value=10_000))
@settings(max_examples=50, deadline=None)
def test_random_cluster_plans_are_seed_deterministic(seed):
    a = FaultPlan.random(seed, cluster_nodes=4)
    assert a == FaultPlan.random(seed, cluster_nodes=4)
    # The single-node draw sequence is unchanged by the appended cluster
    # draws: a cluster plan never targets single-GPU crash machinery.
    assert a.crashes == ()


def test_random_cluster_plans_eventually_draw_each_kind():
    plans = [FaultPlan.random(s, cluster_nodes=4) for s in range(40)]
    assert any(p.rail_faults for p in plans)
    assert any(p.node_stragglers for p in plans)
    assert any(p.node_crashes for p in plans)


# ----------------------------------------------------------------------
# Re-rail algebra (closed-form properties)
# ----------------------------------------------------------------------
@given(
    nbytes=st.integers(min_value=1, max_value=10**9),
    down=st.sets(st.integers(min_value=0, max_value=3), max_size=3),
)
@settings(max_examples=200, deadline=None)
def test_rail_assignment_conserves_bytes(nbytes, down):
    scales = tuple(0.0 if r in down else 1.0 for r in range(4))
    assignment = rail_assignment(nbytes, 8, 4, scales)
    assert sum(assignment) == nbytes
    for r in down:
        assert assignment[r] == 0


def test_rail_assignment_healthy_identity():
    for nbytes in (1, 100, 12345):
        base = rail_bytes(nbytes, 8, 4)
        assert rail_assignment(nbytes, 8, 4, None) == base
        assert rail_assignment(nbytes, 8, 4, (1.0,) * 4) == base


def test_rail_assignment_degraded_rails_keep_their_traffic():
    assert rail_assignment(100, 8, 4, (1.0, 0.5, 1.0, 1.0)) == \
        rail_bytes(100, 8, 4)


def test_rail_assignment_all_rails_down_refused():
    with pytest.raises(FaultPlanError):
        rail_assignment(100, 8, 4, (0.0, 0.0, 0.0, 0.0))


# ----------------------------------------------------------------------
# Eager validation (satellite: fail at construction, not mid-sweep)
# ----------------------------------------------------------------------
def test_crash_out_of_range_fails_at_construction():
    from repro.faults import CrashFault

    plan = FaultPlan(crashes=(CrashFault(gpu=7, at_iteration=5),))
    with pytest.raises(FaultPlanError,
                       match="crash targets gpu7 but the run uses 4 GPU"):
        Trainer(TrainingConfig("lenet", 16, 4,
                               comm_method=CommMethodName.NCCL),
                sim=FAST, faults=plan)


def test_straggler_out_of_range_fails_at_construction():
    plan = FaultPlan(stragglers=(StragglerFault(gpu=6, factor=1.5),))
    with pytest.raises(FaultPlanError, match="straggler targets gpu6"):
        Trainer(TrainingConfig("lenet", 16, 2,
                               comm_method=CommMethodName.NCCL),
                sim=FAST, faults=plan)


def test_cluster_faults_need_hierarchical_collective():
    plan = FaultPlan(rail_faults=(RailFault(0, 0),))
    with pytest.raises(FaultPlanError, match="non-compat cluster_collective"):
        Trainer(TrainingConfig("lenet", 16, 8,
                               comm_method=CommMethodName.NCCL),
                sim=FAST, faults=plan)


def test_rail_and_node_targets_bounds_checked():
    with pytest.raises(FaultPlanError, match="targets node 5"):
        Trainer(cluster_config(2), sim=FAST,
                faults=FaultPlan(rail_faults=(RailFault(5, 0),)))
    with pytest.raises(FaultPlanError, match="targets rail 9"):
        Trainer(cluster_config(2), sim=FAST,
                faults=FaultPlan(rail_faults=(RailFault(0, 9),)))
    with pytest.raises(FaultPlanError, match="targets node 3"):
        Trainer(cluster_config(2), sim=FAST, faults=FaultPlan(
            node_crashes=(NodeCrashFault(3, 10),)))


def test_single_gpu_crash_cannot_shrink_a_cluster():
    from repro.faults import CrashFault

    plan = FaultPlan(crashes=(CrashFault(gpu=3, at_iteration=5),))
    with pytest.raises(FaultPlanError, match="use NodeCrashFault"):
        Trainer(cluster_config(2), sim=FAST, faults=plan)


# ----------------------------------------------------------------------
# The fault-aware analytic fast path
# ----------------------------------------------------------------------
def test_analytic_path_refuses_unrepresentable_plans():
    plan = FaultPlan(node_crashes=(NodeCrashFault(1, 10),),
                     policy=ResiliencePolicy.SHRINK)
    with pytest.raises(FaultPlanError, match="cannot represent this "
                                             "fault plan"):
        Trainer(cluster_config(2, fast_path="analytic"), sim=FAST,
                faults=plan)


def test_auto_fast_path_falls_back_to_event_under_conflicts():
    crash = FaultPlan(node_crashes=(NodeCrashFault(1, 10),))
    rail = FaultPlan(rail_faults=(RailFault(0, 0, bandwidth_scale=0.5),))
    config = cluster_config(8)   # 8 nodes: healthy auto resolves analytic
    assert resolve_fast_path(config) == "analytic"
    assert resolve_fast_path(config, crash) == "event"
    # Rail faults are global closed-form algebra: analytic-safe.
    assert resolve_fast_path(config, rail) == "analytic"
    # Node-0 stragglers live on the represented node; others do not.
    on0 = FaultPlan(node_stragglers=(NodeStragglerFault(0, 1.5),))
    off0 = FaultPlan(node_stragglers=(NodeStragglerFault(2, 1.5),))
    assert resolve_fast_path(config, on0) == "analytic"
    assert resolve_fast_path(config, off0) == "event"


def test_rail_fault_runs_on_the_analytic_path_and_slows_inter_phase():
    config = cluster_config(8, network="alexnet")
    healthy = Trainer(config, sim=FAST).run()
    plan = FaultPlan(rail_faults=(RailFault(0, 0, bandwidth_scale=0.25),))
    faulted = Trainer(config, sim=FAST, faults=plan).run()
    assert faulted.faults.segments[-1].rails_degraded == 1
    assert faulted.iteration_time > healthy.iteration_time


# ----------------------------------------------------------------------
# Recovery determinism (satellite: same seed + plan => identical runs)
# ----------------------------------------------------------------------
def _scenario_points():
    config = cluster_config(2, network="alexnet")
    return [
        SweepPoint.make(config, overrides={"faults": FaultPlan(
            rail_faults=(RailFault(0, 1, at=0.05, bandwidth_scale=0.0),),
        )}),
        SweepPoint.make(config, overrides={"faults": FaultPlan(
            node_crashes=(NodeCrashFault(1, 3),),
            policy=ResiliencePolicy.SHRINK,
        )}),
        SweepPoint.make(config, overrides={"faults": FaultPlan(
            node_crashes=(NodeCrashFault(0, 3),),
            policy=ResiliencePolicy.CHECKPOINT_RESTART,
        )}),
        SweepPoint.make(config, overrides={
            "faults": FaultPlan.random(11, cluster_nodes=2),
        }),
    ]


def test_cluster_recovery_identical_across_runs_and_job_counts():
    from repro.analysis.serialization import result_to_dict

    spec = SweepSpec.explicit("cluster-det", _scenario_points())
    serial_a = SweepRunner(sim=FAST).run(spec)
    serial_b = SweepRunner(sim=FAST).run(spec)
    pooled = SweepRunner(sim=FAST, jobs=2).run(spec)
    for a, b, c in zip(serial_a, serial_b, pooled):
        assert result_to_dict(a.result) == result_to_dict(b.result)
        assert result_to_dict(a.result) == result_to_dict(c.result)


def test_node_shrink_reranks_survivors_densely():
    plan = FaultPlan(node_crashes=(NodeCrashFault(0, 3),),
                     policy=ResiliencePolicy.SHRINK)
    result = Trainer(cluster_config(2), sim=FAST, faults=plan).run()
    summary = result.faults
    assert summary.crashed_node == 0
    assert summary.crashed_gpu is None
    # Survivors re-rank onto ranks 0..7: one full chassis keeps training.
    assert summary.segments[-1].gpus == 8
    assert summary.survivors == 8


# ----------------------------------------------------------------------
# Serialization and the cache's recovery breakdown
# ----------------------------------------------------------------------
def test_cluster_fault_summary_roundtrips():
    from repro.analysis.serialization import result_from_dict, result_to_dict

    plan = FaultPlan(
        rail_faults=(RailFault(0, 1, at=0.05, bandwidth_scale=0.0),),
        node_crashes=(NodeCrashFault(1, 3),),
        policy=ResiliencePolicy.SHRINK,
    )
    result = Trainer(cluster_config(2), sim=FAST, faults=plan).run()
    clone = result_from_dict(result_to_dict(result))
    assert clone.faults == result.faults
    assert clone.faults.crashed_node == 1
    assert max(s.rails_degraded for s in clone.faults.segments) == 1


def test_store_entry_carries_recovery_breakdown(tmp_path):
    from repro.runner import ResultStore

    plan = FaultPlan(node_crashes=(NodeCrashFault(1, 3),),
                     policy=ResiliencePolicy.CHECKPOINT_RESTART)
    point = SweepPoint.make(cluster_config(2),
                            overrides={"faults": plan})
    store = ResultStore(tmp_path)
    runner = SweepRunner(sim=FAST, store=store)
    runner.run(SweepSpec.explicit("bd", [point]))
    assert runner.stats.faulted == 1
    assert runner.stats.fault_overhead > 0.0

    # A fresh runner replays the point from disk: the breakdown must
    # come back from the entry's additive "faults" field.
    replay = SweepRunner(sim=FAST, store=store)
    replay.run(SweepSpec.explicit("bd", [point]))
    assert replay.stats.executed == 0 and replay.stats.disk_hits == 1
    assert replay.stats.faulted == 1
    assert replay.stats.fault_overhead == pytest.approx(
        runner.stats.fault_overhead)
    line = replay.stats.describe_faults()
    assert line is not None and "1 fault-injected point(s)" in line


def test_healthy_points_report_no_fault_line():
    runner = SweepRunner(sim=FAST)
    runner.run(SweepSpec.explicit(
        "healthy", [SweepPoint.make(cluster_config(2))]))
    assert runner.stats.faulted == 0
    assert runner.stats.describe_faults() is None
