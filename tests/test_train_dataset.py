"""Tests for the synthetic dataset."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.errors import ConfigurationError
from repro.dnn.shapes import Shape
from repro.train import SyntheticImageDataset, imagenet_subset


def test_bytes_per_image():
    ds = imagenet_subset(100, Shape(3, 224, 224))
    assert ds.bytes_per_image == 3 * 224 * 224 * 4
    assert ds.total_bytes == 100 * ds.bytes_per_image


def test_batches_cover_dataset():
    ds = imagenet_subset(100, Shape(3, 32, 32))
    batches = list(ds.batches(32))
    assert batches == [32, 32, 32, 4]
    assert sum(batches) == 100


def test_num_batches_matches_iteration():
    ds = imagenet_subset(1000, Shape(3, 32, 32))
    assert ds.num_batches(64) == len(list(ds.batches(64)))


def test_invalid_dataset_rejected():
    with pytest.raises(ConfigurationError):
        SyntheticImageDataset("d", 0, Shape(3, 2, 2))


def test_invalid_batch_rejected():
    ds = imagenet_subset(10, Shape(3, 2, 2))
    with pytest.raises(ConfigurationError):
        list(ds.batches(0))


def test_scaled_for_weak_scaling():
    ds = imagenet_subset(256, Shape(3, 32, 32))
    big = ds.scaled(4)
    assert big.num_images == 1024
    assert big.image_shape == ds.image_shape
    assert "x4" in big.name


@given(
    images=st.integers(min_value=1, max_value=10_000),
    batch=st.integers(min_value=1, max_value=512),
)
def test_batches_partition_property(images, batch):
    ds = imagenet_subset(images, Shape(3, 8, 8))
    batches = list(ds.batches(batch))
    assert sum(batches) == images
    assert all(0 < b <= batch for b in batches)
    assert all(b == batch for b in batches[:-1])
