"""Tests for the CPU (``local`` KVStore) communicator."""

import pytest

from repro.comm import LocalCommunicator, make_communicator
from repro.core.config import CommMethodName, SimulationConfig, TrainingConfig
from repro.core.constants import CALIBRATION
from repro.dnn.stats import WeightArray
from repro.gpu import GpuDevice, KernelCostModel
from repro.profile import Profiler
from repro.sim import Environment
from repro.topology import Fabric, build_dgx1v
from repro.train import train

FAST = SimulationConfig(warmup_iterations=1, measure_iterations=2)


def _make_comm(num_gpus, profiler=None):
    env = Environment()
    topo = build_dgx1v()
    fabric = Fabric(env, topo, CALIBRATION)
    devices = [GpuDevice(env, topo.gpu(i), profiler=profiler) for i in range(num_gpus)]
    comm = LocalCommunicator(env, fabric, devices, KernelCostModel(),
                             CALIBRATION, profiler)
    return env, fabric, comm


ARRAY = WeightArray(key=0, name="w", numel=500_000, layer="l")


def test_factory_builds_local():
    env, fabric, _ = _make_comm(2)
    comm = make_communicator(
        CommMethodName.LOCAL, env, fabric,
        [GpuDevice(env, fabric.topology.gpu(i)) for i in range(2)],
        KernelCostModel(), CALIBRATION, None,
    )
    assert isinstance(comm, LocalCommunicator)


def test_factory_rejects_unknown():
    with pytest.raises(ValueError):
        make_communicator("smoke-signals")


def test_single_gpu_local_is_just_update():
    env, fabric, comm = _make_comm(1)
    done = env.process(comm.sync_array(ARRAY))
    env.run(until=done)
    assert sum(fabric.bytes_moved.values()) == 0


def test_sync_uses_only_pcie():
    env, fabric, comm = _make_comm(4)
    done = env.process(comm.sync_array(ARRAY))
    env.run(until=done)
    for link_name, moved in fabric.bytes_moved.items():
        if "nvlink" in link_name:
            assert moved == 0, link_name
    assert sum(fabric.bytes_moved.values()) > 0


def test_transfers_recorded_both_directions():
    profiler = Profiler()
    env, fabric, comm = _make_comm(4, profiler)
    done = env.process(comm.sync_array(ARRAY))
    env.run(until=done)
    d2h = [t for t in profiler.transfers if t.kind == "d2h"]
    h2d = [t for t in profiler.transfers if t.kind == "h2d"]
    assert len(d2h) == 4 and len(h2d) == 4
    assert all(t.nbytes == ARRAY.nbytes for t in d2h + h2d)


def test_local_slower_than_p2p_for_big_arrays():
    """PCIe staging is the bottleneck for communication-heavy workloads."""
    big = WeightArray(key=0, name="w", numel=30_000_000, layer="l")

    def sync_time(factory):
        env, fabric, comm = factory(8)
        done = env.process(comm.sync_array(big))
        env.run(until=done)
        return env.now

    from repro.comm import P2PCommunicator

    def make_p2p(n):
        env = Environment()
        topo = build_dgx1v()
        fabric = Fabric(env, topo, CALIBRATION)
        devices = [GpuDevice(env, topo.gpu(i)) for i in range(n)]
        return env, fabric, P2PCommunicator(env, fabric, devices,
                                            KernelCostModel(), CALIBRATION)

    assert sync_time(_make_comm) > 3 * sync_time(make_p2p)


def test_end_to_end_training_with_local():
    r = train(TrainingConfig("lenet", 16, 4, comm_method=CommMethodName.LOCAL),
              sim=FAST)
    assert r.epoch_time > 0
    assert r.config.comm_method is CommMethodName.LOCAL


def test_local_alexnet_pcie_bound():
    p2p = train(TrainingConfig("alexnet", 16, 8, comm_method=CommMethodName.P2P),
                sim=FAST)
    local = train(TrainingConfig("alexnet", 16, 8, comm_method=CommMethodName.LOCAL),
                  sim=FAST)
    assert local.epoch_time > 5 * p2p.epoch_time
