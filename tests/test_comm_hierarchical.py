"""Tests for the hierarchical rail-aware cluster collectives.

Covers the phase-wire algebra, the communicator's validation, the
event-vs-analytic fast-path cross-validation on 1/2/4-node topologies
under strict invariants, the cluster-tier config knobs (validation,
describe tags, schema-v6 serialization), the deprecated aggregated
multinode path, and the ``cluster`` scaling experiment.  See
docs/SCALING.md for the model.
"""

import math

import pytest

from repro.checks import CheckEngine
from repro.core.config import CommMethodName, SimulationConfig, TrainingConfig
from repro.core.errors import ConfigurationError
from repro.comm.nccl import (
    hierarchical_phase_times,
    hierarchical_phase_wire,
    hierarchical_schedule_total,
    hierarchical_wire_total,
)
from repro.comm.nccl.hierarchical import rail_bytes
from repro.train import Trainer

FAST = SimulationConfig(warmup_iterations=0, measure_iterations=2)


def cluster_config(nodes, fast_path, network="lenet", collective="hierarchical-ring"):
    return TrainingConfig(
        network, 16, 8 * nodes,
        comm_method=CommMethodName.NCCL_ALLREDUCE,
        cluster_nodes=nodes,
        cluster_fabric="single-switch",
        cluster_collective=collective,
        cluster_fast_path=fast_path,
    )


# ----------------------------------------------------------------------
# Phase-wire algebra
# ----------------------------------------------------------------------
def test_phase_wire_closed_forms():
    intra, inter, ag = hierarchical_phase_wire(800, 4, 8)
    assert intra == ag == 4 * 7 * 800
    assert inter == 2 * 3 * 800
    assert hierarchical_wire_total(800, 4, 8) == intra + inter + ag


def test_schedule_total_ring_equals_tree():
    ring = hierarchical_schedule_total(999, 4, 8, "ring")
    tree = hierarchical_schedule_total(999, 4, 8, "tree")
    assert ring == tree  # same bytes, different order


def test_single_node_has_no_inter_phase():
    _, inter, _ = hierarchical_phase_wire(800, 1, 8)
    assert inter == 0
    t_rs, t_inter, t_ag = hierarchical_phase_times(800, 1, 40e9, 10e9, 2e-6)
    assert t_inter == 0.0
    assert t_rs == t_ag > 0.0


def test_rail_bytes_distributes_remainder_to_low_rails():
    split = rail_bytes(100, 8, 4)
    assert split == [26, 26, 24, 24]
    assert sum(split) == 100
    assert max(split) - min(split) <= 2  # 8//4 = 2 shards per rail


def test_inter_tree_is_logarithmic_in_nodes():
    kwargs = dict(intra_bandwidth=40e9, rail_bandwidth=10e9, rail_latency=2e-6)
    _, ring16, _ = hierarchical_phase_times(
        1 << 10, 16, inter_algorithm="ring", **kwargs)
    _, tree16, _ = hierarchical_phase_times(
        1 << 10, 16, inter_algorithm="tree", **kwargs)
    # Tiny payload: latency-bound, so 2*log2(16) = 8 tree hops beat the
    # ring's 2*(16-1) = 30.
    assert tree16 < ring16


# ----------------------------------------------------------------------
# Event vs analytic fast-path cross-validation (strict invariants)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("nodes", [1, 2, 4])
def test_event_and_analytic_paths_agree(nodes):
    results = {}
    for fast_path in ("event", "analytic"):
        r = Trainer(cluster_config(nodes, fast_path), sim=FAST,
                    checks=CheckEngine("strict")).run()
        assert r.violations == ()
        results[fast_path] = r
    event, analytic = results["event"], results["analytic"]
    # Collective charges are identical algebra in both modes, so the
    # exposed weight-update stage matches to float tolerance; the full
    # iteration additionally carries per-device dispatch overhead (the
    # event path simulates every node's GPUs, the analytic path only the
    # representative node), so it agrees loosely.
    assert analytic.stages.wu == pytest.approx(event.stages.wu, rel=1e-9)
    assert analytic.iteration_time == pytest.approx(
        event.iteration_time, rel=0.2)


def test_single_node_paths_are_byte_identical():
    event = Trainer(cluster_config(1, "event"), sim=FAST).run()
    analytic = Trainer(cluster_config(1, "analytic"), sim=FAST).run()
    assert event.iteration_time == analytic.iteration_time
    assert event.epoch_time == analytic.epoch_time


def test_tree_inter_algorithm_runs_strict():
    r = Trainer(cluster_config(2, "event", collective="hierarchical-tree"),
                sim=FAST, checks=CheckEngine("strict")).run()
    assert r.violations == ()


def test_auto_fast_path_threshold():
    from repro.train.strategies import AUTO_ANALYTIC_NODES, resolve_fast_path

    assert resolve_fast_path(cluster_config(2, "auto")) == "event"
    big = cluster_config(AUTO_ANALYTIC_NODES + 1, "auto")
    assert resolve_fast_path(big) == "analytic"
    assert resolve_fast_path(cluster_config(2, "analytic")) == "analytic"


# ----------------------------------------------------------------------
# Config validation and describe tags
# ----------------------------------------------------------------------
def test_hierarchical_requires_nccl_method():
    with pytest.raises(ConfigurationError):
        TrainingConfig("lenet", 16, 16, comm_method=CommMethodName.P2P,
                       cluster_nodes=2, cluster_collective="hierarchical-ring")


def test_hierarchical_requires_full_nodes():
    with pytest.raises(ConfigurationError):
        TrainingConfig("lenet", 16, 12,
                       comm_method=CommMethodName.NCCL_ALLREDUCE,
                       cluster_nodes=2, cluster_collective="hierarchical-ring")


def test_hierarchical_rejects_tuner_knobs():
    with pytest.raises(ConfigurationError):
        TrainingConfig("lenet", 16, 16,
                       comm_method=CommMethodName.NCCL_ALLREDUCE,
                       cluster_nodes=2, cluster_collective="hierarchical-ring",
                       nccl_algorithm="auto", nccl_protocol="auto")


@pytest.mark.parametrize("field, value", [
    ("cluster_fabric", "torus"),
    ("cluster_collective", "flat"),
    ("cluster_fast_path", "magic"),
])
def test_invalid_cluster_knobs_rejected(field, value):
    with pytest.raises(ConfigurationError):
        TrainingConfig("lenet", 16, 16,
                       comm_method=CommMethodName.NCCL_ALLREDUCE,
                       cluster_nodes=2, **{field: value})


def test_describe_carries_cluster_tags():
    label = cluster_config(2, "auto").describe()
    assert "hierarchical-ring" in label
    assert "single-switch" in label
    compat = TrainingConfig("lenet", 16, 4).describe()
    assert "hierarchical" not in compat and "switch" not in compat


# ----------------------------------------------------------------------
# Schema-v7 serialization round-trip
# ----------------------------------------------------------------------
def test_schema_v7_roundtrips_cluster_fields():
    from repro.analysis.serialization import (
        SCHEMA_VERSION, result_from_dict, result_to_dict,
    )

    assert SCHEMA_VERSION == 7
    result = Trainer(cluster_config(2, "analytic"), sim=FAST).run()
    clone = result_from_dict(result_to_dict(result))
    assert clone.config.cluster_fabric == "single-switch"
    assert clone.config.cluster_collective == "hierarchical-ring"
    assert clone.config.cluster_fast_path == "analytic"
    assert clone.iteration_time == result.iteration_time


# ----------------------------------------------------------------------
# The deprecated aggregated multinode path
# ----------------------------------------------------------------------
def test_multinode_aggregated_fabric_warns_once():
    from repro.experiments import multinode_study

    multinode_study._warned_aggregated = False
    with pytest.warns(DeprecationWarning, match="aggregated"):
        spec = multinode_study.sweep_spec(
            networks=("lenet",), node_counts=(2,), fabric="aggregated")
    assert spec.points[0].config.cluster_collective == "compat"
    import warnings

    with warnings.catch_warnings():
        warnings.simplefilter("error")  # second call must stay silent
        multinode_study.sweep_spec(
            networks=("lenet",), node_counts=(2,), fabric="aggregated")


def test_multinode_default_routes_through_cluster_tier():
    from repro.experiments import multinode_study

    spec = multinode_study.sweep_spec(networks=("lenet",), node_counts=(1, 2))
    for point in spec.points:
        assert point.config.cluster_fabric == "single-switch"
        assert point.config.cluster_collective == "hierarchical-ring"
        assert point.config.cluster_fast_path == "auto"


# ----------------------------------------------------------------------
# The cluster scaling experiment
# ----------------------------------------------------------------------
def test_cluster_scaling_structure_and_render():
    from repro.experiments import cluster_scaling
    from repro.runner import SweepRunner
    from repro.train.strategies import AUTO_ANALYTIC_NODES

    result = cluster_scaling.run(
        networks=("lenet",),
        node_counts=(1, 2, 8),
        runner=SweepRunner(sim=FAST),
    )
    assert [r.num_gpus for r in result.rows] == [8, 16, 64]
    assert result.speedup("lenet", 1) == pytest.approx(1.0)
    eff = result.efficiency("lenet", 2)
    assert 0.0 < eff <= 1.001
    table = cluster_scaling.render(result)
    assert "1024" not in table  # only the requested node counts
    assert "8x8" in table
    # node counts past the auto threshold are labelled analytic
    assert 8 > AUTO_ANALYTIC_NODES
    assert "analytic" in table
    # no column overflows its clipped width (the title line is exempt)
    for line in table.splitlines():
        if "|" in line:
            assert all(len(cell.strip()) <= 24 for cell in line.split("|"))
