"""Tests for unit helpers and formatting."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.units import (
    GB,
    GIB,
    KB,
    KIB,
    MB,
    MIB,
    format_bytes,
    format_seconds,
    gbps,
)


def test_si_constants():
    assert KB == 1_000
    assert MB == 1_000_000
    assert GB == 1_000_000_000


def test_binary_constants():
    assert KIB == 1024
    assert MIB == 1024 * 1024
    assert GIB == 1024 ** 3


def test_gbps():
    assert gbps(25.0) == 25e9


def test_format_bytes_scales():
    assert format_bytes(512) == "512 B"
    assert format_bytes(2048) == "2.00 KiB"
    assert format_bytes(3 * MIB) == "3.00 MiB"
    assert format_bytes(2.37 * GIB) == "2.37 GiB"


def test_format_seconds_scales():
    assert format_seconds(12e-6) == "12.00 us"
    assert format_seconds(3.5e-3) == "3.50 ms"
    assert format_seconds(2.0) == "2.00 s"
    assert format_seconds(90.0) == "1m30.0s"


def test_format_seconds_negative():
    assert format_seconds(-0.5) == "-500.00 ms"


@given(st.floats(min_value=0, max_value=1e15, allow_nan=False))
def test_format_bytes_never_crashes(n):
    assert isinstance(format_bytes(n), str)


@given(st.floats(min_value=0, max_value=1e7, allow_nan=False))
def test_format_seconds_never_crashes(t):
    assert isinstance(format_seconds(t), str)
