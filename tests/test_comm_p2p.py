"""Tests for the P2P (device KVStore) communicator."""

import pytest

from repro.comm import P2PCommunicator, reduction_tree
from repro.comm.p2p import BIGARRAY_BOUND_ELEMENTS, _split_chunks
from repro.core.constants import CALIBRATION
from repro.dnn.stats import WeightArray
from repro.gpu import GpuDevice, KernelCostModel
from repro.profile import Profiler
from repro.sim import Environment
from repro.topology import Fabric, build_dgx1v


# ----------------------------------------------------------------------
# Tree construction
# ----------------------------------------------------------------------
def test_reduction_tree_8():
    assert reduction_tree(8) == [
        [(1, 0), (3, 2), (5, 4), (7, 6)],
        [(2, 0), (6, 4)],
        [(4, 0)],
    ]


def test_reduction_tree_4():
    assert reduction_tree(4) == [[(1, 0), (3, 2)], [(2, 0)]]


def test_reduction_tree_2():
    assert reduction_tree(2) == [[(1, 0)]]


def test_reduction_tree_1():
    assert reduction_tree(1) == []


def test_reduction_tree_rejects_zero():
    with pytest.raises(ValueError):
        reduction_tree(0)


def test_reduction_tree_all_sources_once():
    """Every non-root GPU sends exactly once; everything reaches GPU0."""
    for n in (2, 4, 8):
        stages = reduction_tree(n)
        sources = [src for stage in stages for src, _ in stage]
        assert sorted(sources) == list(range(1, n))


def test_split_chunks():
    assert _split_chunks(10, 4) == [4, 4, 2]
    assert _split_chunks(8, 4) == [4, 4]
    assert _split_chunks(3, 4) == [3]
    assert _split_chunks(0, 4) == [0]


# ----------------------------------------------------------------------
# Synchronization behaviour
# ----------------------------------------------------------------------
def _make_comm(num_gpus, profiler=None):
    env = Environment()
    topo = build_dgx1v()
    fabric = Fabric(env, topo, CALIBRATION)
    devices = [GpuDevice(env, topo.gpu(i), profiler=profiler) for i in range(num_gpus)]
    comm = P2PCommunicator(env, fabric, devices, KernelCostModel(),
                           CALIBRATION, profiler)
    return env, fabric, comm


def _sync(env, comm, array):
    done = env.process(comm.sync_array(array))
    env.run(until=done)
    return env.now


SMALL = WeightArray(key=0, name="w", numel=100_000, layer="l")       # tree path
BIG = WeightArray(key=1, name="big", numel=4_000_000, layer="l")     # sharded path


def test_single_gpu_sync_is_just_update():
    env, fabric, comm = _make_comm(1)
    t = _sync(env, comm, SMALL)
    assert t < 100e-6
    assert sum(fabric.bytes_moved.values()) == 0


def test_tree_sync_moves_expected_bytes():
    env, fabric, comm = _make_comm(2)
    _sync(env, comm, SMALL)
    # one push + one broadcast over the 0-1 link
    assert sum(fabric.bytes_moved.values()) == 2 * SMALL.nbytes


def test_tree_sync_bytes_scale_with_gpu_count():
    totals = {}
    for n in (2, 4, 8):
        env, fabric, comm = _make_comm(n)
        _sync(env, comm, SMALL)
        totals[n] = sum(fabric.bytes_moved.values())
    # (n-1) pushes + (n-1) broadcasts, each one link hop (tree edges are
    # all direct NVLink)
    for n in (2, 4, 8):
        assert totals[n] == 2 * (n - 1) * SMALL.nbytes


def test_sharded_path_taken_for_big_arrays():
    assert BIG.numel >= BIGARRAY_BOUND_ELEMENTS
    env, fabric, comm = _make_comm(4, Profiler())
    _sync(env, comm, BIG)
    # reduce-scatter + allgather: 2 * (n-1) shard transfers of S/n each,
    # but staged routes may double-count on relay links; bytes moved is at
    # least the algorithmic minimum.
    shard = -(-BIG.nbytes // 4)
    assert sum(fabric.bytes_moved.values()) >= 2 * 3 * 4 * shard // 4


def test_sharded_faster_than_tree_would_be():
    """Sharding a 16 MB array beats pushing it through GPU0 serially."""
    env, fabric, comm = _make_comm(8)
    t_big = _sync(env, comm, BIG)
    # algorithmic lower bound through one link
    one_link = 2 * BIG.nbytes / (25e9 * CALIBRATION.nvlink_efficiency)
    tree_lower_bound = 2 * one_link  # reduce + broadcast, >= 2 stages each
    assert t_big < tree_lower_bound


def test_sync_time_grows_with_gpu_count():
    times = [_sync(*(_make_comm(n)[0::2]), SMALL) for n in (2, 4, 8)]
    assert times[0] < times[1] < times[2]


def test_transfers_recorded():
    profiler = Profiler()
    env, fabric, comm = _make_comm(4, profiler)
    _sync(env, comm, SMALL)
    p2p = [t for t in profiler.transfers if t.kind == "p2p"]
    assert len(p2p) == 6  # 3 reduce edges + 3 broadcast edges
    assert all(t.nbytes == SMALL.nbytes for t in p2p)


def test_update_kernel_runs_on_server():
    profiler = Profiler()
    env, fabric, comm = _make_comm(4, profiler)
    _sync(env, comm, SMALL)
    updates = [k for k in profiler.kernels if "_update." in k.name]
    assert len(updates) == 1
    assert updates[0].gpu == 0
    adds = [k for k in profiler.kernels if k.name.startswith("grad_add")]
    assert {k.gpu for k in adds} == {0, 2}  # tree parents


def test_concurrent_arrays_contend():
    """Two arrays synced together take longer than one but less than 2x."""
    arrays = [
        WeightArray(key=i, name=f"w{i}", numel=200_000, layer="l") for i in range(2)
    ]
    env, fabric, comm = _make_comm(4)
    one = env.process(comm.sync_array(arrays[0]))
    env.run(until=one)
    t_one = env.now

    env2, fabric2, comm2 = _make_comm(4)
    both = [env2.process(comm2.sync_array(a)) for a in arrays]
    env2.run(until=env2.all_of(both))
    t_both = env2.now
    assert t_one < t_both < 2.2 * t_one
