"""End-to-end trainer tests."""

import pytest

from repro import (
    CommMethodName,
    OutOfMemoryError,
    ScalingMode,
    SimulationConfig,
    TrainingConfig,
    train,
)
from repro.dnn.builder import NetworkBuilder
from repro.dnn.shapes import Shape
from repro.train import Trainer

FAST = SimulationConfig(warmup_iterations=1, measure_iterations=2)


def _train(net="lenet", batch=16, gpus=1, method=CommMethodName.P2P, **kwargs):
    return train(
        TrainingConfig(net, batch, gpus, comm_method=method), sim=FAST, **kwargs
    )


def test_result_basic_invariants():
    r = _train()
    assert r.iteration_time > 0
    assert r.epoch_time > r.fixed_overhead
    assert r.iterations_per_epoch == 256 * 1024 // 16
    assert len(r.iteration_times) == 2
    assert r.images_per_second > 0


def test_epoch_extrapolation():
    r = _train()
    assert r.epoch_time == pytest.approx(
        r.iterations_per_epoch * r.iteration_time + r.fixed_overhead
    )


def test_determinism():
    a, b = _train(), _train()
    assert a.epoch_time == b.epoch_time
    assert a.iteration_times == b.iteration_times


def test_stage_spans_cover_iteration():
    r = _train(gpus=4, method=CommMethodName.NCCL)
    st = r.stages
    assert 0 < st.fp < st.iteration
    assert 0 < st.bp < st.iteration
    assert st.wu >= 0
    assert st.fp + st.bp + st.wu <= st.iteration + 1e-9


def test_multi_gpu_reduces_epoch_time():
    one = _train(gpus=1)
    four = _train(gpus=4)
    assert four.epoch_time < one.epoch_time


def test_per_iteration_time_grows_with_gpus():
    """Per-iteration cost rises with GPU count (comm + sync overheads)."""
    one = _train(gpus=1)
    eight = _train(gpus=8)
    assert eight.iteration_time > one.iteration_time


def test_oom_configuration_raises():
    with pytest.raises(OutOfMemoryError):
        _train(net="inception-v3", batch=128, gpus=4, method=CommMethodName.NCCL)


def test_oom_check_can_be_disabled():
    r = _train(net="inception-v3", batch=128, gpus=1,
               method=CommMethodName.NCCL, check_memory=False)
    assert r.epoch_time > 0


def test_overlap_helps():
    base = TrainingConfig("googlenet", 16, 4, comm_method=CommMethodName.NCCL)
    no_overlap = TrainingConfig("googlenet", 16, 4, comm_method=CommMethodName.NCCL,
                                overlap_bp_wu=False)
    with_overlap = train(base, sim=FAST)
    without = train(no_overlap, sim=FAST)
    assert with_overlap.epoch_time < without.epoch_time


def test_weak_scaling_runs_more_iterations():
    strong = _train(gpus=4)
    weak = train(
        TrainingConfig("lenet", 16, 4, comm_method=CommMethodName.P2P,
                       scaling=ScalingMode.WEAK),
        sim=FAST,
    )
    assert weak.iterations_per_epoch == 4 * strong.iterations_per_epoch


def test_nccl_has_fixed_overhead_p2p_does_not():
    p2p = _train(method=CommMethodName.P2P)
    nccl = _train(method=CommMethodName.NCCL)
    assert nccl.fixed_overhead > p2p.fixed_overhead


def test_memory_readings_attached():
    r = _train(gpus=4)
    assert len(r.memory) == 8
    phases = {m.phase for m in r.memory}
    assert phases == {"pretraining", "training"}


def test_profiler_kept_on_request():
    r = _train(keep_profiler=True)
    assert r.profiler is not None
    assert r.profiler.kernels
    assert _train().profiler is None


def test_gpu_busy_reported_per_gpu():
    r = _train(gpus=2)
    assert set(r.gpu_busy) == {0, 1}
    assert all(0 < b <= 1 for b in r.gpu_busy.values())


def test_custom_network_override():
    b = NetworkBuilder("custom")
    b.conv(8, 3, pad=1, name="c1")
    b.global_avgpool()
    b.dense(10)
    b.softmax()
    config = TrainingConfig("custom", 16, 2, comm_method=CommMethodName.P2P,
                            custom_network=True)
    trainer = Trainer(config, sim=FAST, network=b.build(), input_shape=Shape(3, 16, 16))
    result = trainer.run()
    assert result.epoch_time > 0


def test_custom_network_requires_input_shape():
    b = NetworkBuilder("custom")
    b.conv(8, 3)
    with pytest.raises(ValueError):
        Trainer(TrainingConfig("custom", 16, 1, custom_network=True),
                network=b.build())


def test_describe_mentions_config():
    r = _train()
    assert "lenet/b16/g1/p2p" in r.describe()


def test_sync_api_recorded():
    r = _train(gpus=4, method=CommMethodName.NCCL)
    assert r.apis.time_of("cudaStreamSynchronize") > 0
    assert r.apis.percent_of("cudaStreamSynchronize") > 50
