"""Tests for the resilient sweep service: protocol, admission control,
circuit breaker, in-flight dedup, the analytic degraded path, the sharded
crash-safe store, seeded retry jitter, and the in-process service loop.

Process-level chaos (SIGKILL of workers and of the server itself) lives
in ``tests/test_service_chaos.py``; everything here runs in-process.
"""

import asyncio
import io
import json
import os
import pathlib

import pytest

from repro.core.config import CommMethodName, SimulationConfig, TrainingConfig
from repro.obs.bus import EventBus
from repro.obs.events import ServiceRequestEvent
from repro.obs.export import JsonlRecorder, event_to_dict, write_events_jsonl
from repro.runner import ShardedResultStore, SweepPoint, SweepRunner
from repro.service import (
    AdmissionController,
    CircuitBreaker,
    InflightRegistry,
    ProtocolError,
    ServiceConfig,
    SweepService,
    analytic_estimate,
)
from repro.service import protocol
from repro.service.analytic import AnalyticUnsupported

GOLDEN_DIR = pathlib.Path(__file__).parent / "golden"

FAST = SimulationConfig(warmup_iterations=1, measure_iterations=2)
#: Cheapest sim fidelity, for tests that really execute points.
TINY = SimulationConfig(warmup_iterations=0, measure_iterations=1)
CONFIG = TrainingConfig("lenet", 16, 1, comm_method=CommMethodName.P2P)


def _point(batch=16, gpus=1, **kwargs):
    return SweepPoint.make(
        TrainingConfig("lenet", batch, gpus, comm_method=CommMethodName.P2P),
        **kwargs,
    )


def _wire_point(batch=16, gpus=1):
    return {"network": "lenet", "batch_size": batch, "num_gpus": gpus,
            "comm_method": "p2p"}


# ----------------------------------------------------------------------
# Protocol
# ----------------------------------------------------------------------
def test_parse_request_ops_and_rejections():
    assert protocol.parse_request('{"op": "ping"}')["op"] == "ping"
    for bad in ('not json', '[1]', '{"op": "launch_missiles"}', '{}'):
        with pytest.raises(ProtocolError):
            protocol.parse_request(bad)


def test_point_roundtrip_through_wire_format():
    for point in (_point(), _point(batch=64, gpus=4),
                  SweepPoint.make(CONFIG, mode="async")):
        again = protocol.point_from_dict(protocol.point_to_dict(point))
        assert again.config == point.config
        assert again.mode == point.mode


def test_point_from_dict_rejects_malformed_points():
    with pytest.raises(ProtocolError, match="must be an object"):
        protocol.point_from_dict([1, 2])
    with pytest.raises(ProtocolError, match="mode"):
        protocol.point_from_dict({"network": "lenet", "batch_size": 16,
                                  "mode": "psycho"})
    with pytest.raises(ProtocolError, match="unknown point field"):
        protocol.point_from_dict({"network": "lenet", "batch_size": 16,
                                  "topology_builder": "evil"})
    with pytest.raises(ProtocolError, match="must be an integer"):
        protocol.point_from_dict({"network": "lenet", "batch_size": "16"})
    with pytest.raises(ProtocolError, match="at least"):
        protocol.point_from_dict({"network": "lenet"})
    # TrainingConfig's own eager validation is surfaced as ProtocolError.
    with pytest.raises(ProtocolError, match="invalid point"):
        protocol.point_from_dict({"network": "lenet", "batch_size": 0})
    with pytest.raises(ProtocolError):
        protocol.point_from_dict({"network": "lenet", "batch_size": 16,
                                  "comm_method": "pigeon"})


def test_parse_sweep_validates_envelope_fields():
    base = {"op": "sweep", "points": [_wire_point()]}
    request = protocol.parse_sweep(dict(base, client="ci", budget=2,
                                        deadline=1.5, degrade=False))
    assert request.client == "ci" and request.budget == 2
    assert request.deadline == 1.5 and request.degrade is False
    assert protocol.parse_sweep(base).client == "anonymous"
    for bad in (dict(base, client=""), dict(base, points=[]),
                dict(base, budget=-1), dict(base, budget=True),
                dict(base, deadline=0), dict(base, deadline="soon"),
                dict(base, degrade="yes")):
        with pytest.raises(ProtocolError):
            protocol.parse_sweep(bad)


def test_value_payload_is_deterministic_and_sorted():
    result = SweepRunner(sim=FAST).run_point(_point())
    payload = protocol.value_payload("p", result)
    assert payload["kind"] == "training" and payload["degraded"] is False
    assert payload["iteration_time"] == result.iteration_time
    line = protocol.encode(payload)
    assert line.endswith(b"\n")
    assert line == protocol.encode(json.loads(line))  # stable re-encode


# ----------------------------------------------------------------------
# Admission control
# ----------------------------------------------------------------------
def test_admission_per_client_quota_and_release():
    adm = AdmissionController(max_inflight_per_client=2,
                              queue_high=10, queue_low=5)
    assert adm.admit("a", 0) is None
    assert adm.admit("a", 0) is None
    assert adm.admit("a", 0) == "quota"
    assert adm.admit("b", 0) is None          # quotas are per-client
    adm.release("a")
    assert adm.admit("a", 0) is None


def test_admission_backpressure_is_hysteretic():
    adm = AdmissionController(max_inflight_per_client=10,
                              queue_high=4, queue_low=2)
    assert adm.admit("a", 3) is None          # below high: admitted
    assert adm.admit("a", 4) == "backpressure"
    # Latched: still shedding between low and high.
    assert adm.admit("a", 3) == "backpressure"
    # Only once the backlog drains to the low watermark does it reopen.
    assert adm.admit("a", 2) is None


def test_admission_validates_knobs():
    with pytest.raises(ValueError):
        AdmissionController(max_inflight_per_client=0)
    with pytest.raises(ValueError):
        AdmissionController(queue_high=0)
    with pytest.raises(ValueError):
        AdmissionController(queue_high=4, queue_low=5)


# ----------------------------------------------------------------------
# Circuit breaker
# ----------------------------------------------------------------------
def test_breaker_full_state_machine_with_fake_clock():
    now = [0.0]
    breaker = CircuitBreaker(failure_threshold=2, cooldown=10.0,
                             clock=lambda: now[0])
    assert breaker.state == "closed" and breaker.allow()
    breaker.record_failure()
    assert breaker.state == "closed"          # below threshold
    breaker.record_failure()
    assert breaker.state == "open"
    assert not breaker.allow()
    now[0] = 9.9
    assert not breaker.allow()                # cooldown not elapsed
    now[0] = 10.0
    assert breaker.allow()                    # the half-open probe
    assert breaker.state == "half-open"
    assert not breaker.allow()                # exactly one probe at a time
    breaker.record_failure()                  # probe failed: re-open
    assert breaker.state == "open" and not breaker.allow()
    now[0] = 25.0
    assert breaker.allow()
    breaker.record_success()                  # probe succeeded: close
    assert breaker.state == "closed"
    assert breaker.allow() and breaker.allow()


def test_breaker_success_resets_consecutive_failures():
    breaker = CircuitBreaker(failure_threshold=2, cooldown=1.0)
    breaker.record_failure()
    breaker.record_success()
    breaker.record_failure()
    assert breaker.state == "closed"          # failures were not consecutive


# ----------------------------------------------------------------------
# In-flight dedup
# ----------------------------------------------------------------------
def test_inflight_registry_leader_follower_lifecycle():
    async def go():
        reg = InflightRegistry()
        leader, future = reg.claim("k")
        assert leader and len(reg) == 1
        follower, same = reg.claim("k")
        assert not follower and same is future
        reg.resolve("k", 42)
        assert await asyncio.shield(same) == 42
        assert len(reg) == 0
        again, _ = reg.claim("k")             # resolved keys claimable anew
        assert again
        reg.fail("k", RuntimeError("boom"))
        with pytest.raises(RuntimeError):
            await _
    asyncio.run(go())


def test_inflight_abandon_all_fails_every_waiter():
    async def go():
        reg = InflightRegistry()
        _, fa = reg.claim("a")
        _, fb = reg.claim("b")
        assert reg.abandon_all(ConnectionResetError("drain")) == 2
        for future in (fa, fb):
            with pytest.raises(ConnectionResetError):
                await future
        assert len(reg) == 0
    asyncio.run(go())


# ----------------------------------------------------------------------
# Analytic degraded path
# ----------------------------------------------------------------------
def test_analytic_estimate_is_a_marked_floor_of_the_simulation():
    point = _point()
    est = analytic_estimate(point)
    assert est["degraded"] is True and est["kind"] == "analytic"
    assert est["path"] == "analytic-dag"
    floors = est["floors"]
    assert est["iteration_time"] == pytest.approx(
        max(floors["input"] + floors["compute"], floors["wire"])
        + floors["host"]
    )
    assert est["images_per_second"] == pytest.approx(
        16 / est["iteration_time"])
    # The DAG floors are lower bounds: the analytic answer is a sound
    # optimistic estimate of the simulated one.
    simulated = SweepRunner(sim=FAST).run_point(point)
    assert 0.0 < est["iteration_time"] <= simulated.iteration_time + 1e-9


def test_analytic_refuses_async_and_override_points():
    with pytest.raises(AnalyticUnsupported, match="async"):
        analytic_estimate(SweepPoint.make(CONFIG, mode="async"))
    with pytest.raises(AnalyticUnsupported, match="overrides"):
        analytic_estimate(SweepPoint.make(
            CONFIG, overrides={"check_memory": False}))


# ----------------------------------------------------------------------
# Sharded crash-safe store
# ----------------------------------------------------------------------
def _stored_value():
    return SweepRunner(sim=FAST).run_point(_point())


def test_sharded_store_layout_and_roundtrip(tmp_path):
    store = ShardedResultStore(tmp_path, shards=4)
    value = _stored_value()
    for key in ("alpha", "beta", "gamma"):
        store.store(key, value, elapsed=1.25)
    assert len(store) == 3
    for key in ("alpha", "beta", "gamma"):
        path = store.path_for(key)
        assert path.parent == store.shard_for(key)
        assert path.parent.name.startswith("shard-")
        entry = store.load_entry(key)
        assert entry.value.iteration_time == value.iteration_time
        assert entry.elapsed == 1.25
    store.close()
    # A fresh store (fresh process in real life) sees the same entries.
    assert len(ShardedResultStore(tmp_path, shards=4)) == 3


def test_sharded_store_replays_journal_after_simulated_sigkill(tmp_path):
    store = ShardedResultStore(tmp_path, shards=4)
    data = store._encode(_stored_value(), elapsed=2.5)
    # SIGKILL between the journal append and the point-file rename:
    # the journal line exists, the point file does not, close() never ran.
    store._append_journal("victim", data)
    assert store._wal_path.read_text().strip()
    assert not store.path_for("victim").exists()

    recovered = ShardedResultStore(tmp_path, shards=4)
    assert recovered.replayed == 1
    entry = recovered.load_entry("victim")
    assert entry is not None and entry.elapsed == 2.5
    # Consumed logs are removed; a second startup replays nothing.
    assert ShardedResultStore(tmp_path, shards=4).replayed == 0


def test_sharded_store_skips_torn_trailing_journal_line(tmp_path):
    store = ShardedResultStore(tmp_path, shards=2)
    data = store._encode(_stored_value(), elapsed=1.0)
    store._append_journal("committed", data)
    # The writer died mid-append: a torn, undecodable trailing line.
    with open(store._wal_path, "a") as fp:
        fp.write('{"key": "torn", "data": {"schema"')

    recovered = ShardedResultStore(tmp_path, shards=2)
    assert recovered.replayed == 1
    assert recovered.load_entry("committed") is not None
    assert recovered.load_entry("torn") is None       # never acknowledged


def test_sharded_store_does_not_replay_over_intact_entries(tmp_path):
    store = ShardedResultStore(tmp_path, shards=2)
    store.store("done", _stored_value(), elapsed=1.0)
    # Killed after the rename but before any flush: wal still has the line.
    assert store._wal_path.read_text().strip()
    recovered = ShardedResultStore(tmp_path, shards=2)
    assert recovered.replayed == 0                    # file was intact
    assert not list(recovered.journal_dir.glob("wal-*.jsonl"))


def test_sharded_store_journal_is_bounded(tmp_path):
    store = ShardedResultStore(tmp_path, shards=2)
    store.checkpoint_every = 2
    value = _stored_value()
    store.store("one", value)
    assert store._wal_path.stat().st_size > 0
    store.store("two", value)                         # hits the checkpoint
    assert store._wal_path.stat().st_size == 0
    store.store("three", value)
    store.flush()
    assert store._wal_path.stat().st_size == 0
    store.close()
    assert not store._wal_path.exists()
    assert len(ShardedResultStore(tmp_path, shards=2)) == 3


def test_sharded_store_validates_shards(tmp_path):
    with pytest.raises(ValueError):
        ShardedResultStore(tmp_path, shards=0)


def test_atomic_temp_names_embed_pid_and_monotonic_counter(tmp_path, monkeypatch):
    """Two concurrent writers in one directory can never race on the same
    temp path (the satellite fix over the old fixed-suffix naming)."""
    from repro.runner import store as store_module

    seen = []
    real_replace = os.replace

    def spy(src, dst):
        seen.append(pathlib.Path(src).name)
        real_replace(src, dst)

    monkeypatch.setattr(store_module.os, "replace", spy)
    store_module._atomic_write_json(tmp_path / "a.json", {"x": 1})
    store_module._atomic_write_json(tmp_path / "a.json", {"x": 2})
    assert len(seen) == 2 and len(set(seen)) == 2     # distinct temp paths
    pid = str(os.getpid())
    counters = []
    for name in seen:
        parts = name.split(".")
        assert parts[-1] == "tmp" and parts[-3] == pid
        counters.append(int(parts[-2]))
    assert counters[1] > counters[0]                  # monotonic
    assert json.loads((tmp_path / "a.json").read_text()) == {"x": 2}
    assert not list(tmp_path.glob("*.tmp"))


# ----------------------------------------------------------------------
# Seeded retry jitter (runner satellite)
# ----------------------------------------------------------------------
def test_retry_jitter_is_seeded_and_bounded():
    kwargs = dict(retry_backoff=0.01, retry_jitter=0.5, retry_seed=42)
    first = [SweepRunner(**kwargs)._backoff(a) for a in range(1, 5)]
    second = [SweepRunner(**kwargs)._backoff(a) for a in range(1, 5)]
    assert first == second                            # seeded: reproducible
    other = SweepRunner(retry_backoff=0.01, retry_jitter=0.5, retry_seed=7)
    assert [other._backoff(a) for a in range(1, 5)] != first
    for attempt, backoff in enumerate(first, start=1):
        base = 0.01 * 2 ** (attempt - 1)
        assert base <= backoff <= base * 1.5          # bounded jitter
    # Distinct runners de-correlate even with the default seed source.
    assert any(a != b for a, b in zip(
        [SweepRunner(retry_backoff=0.01, retry_jitter=0.5,
                     retry_seed=1)._backoff(a) for a in range(1, 5)],
        [SweepRunner(retry_backoff=0.01, retry_jitter=0.5,
                     retry_seed=2)._backoff(a) for a in range(1, 5)],
    ))


def test_retry_jitter_defaults_off_and_validates():
    runner = SweepRunner(retry_backoff=0.01)
    assert [runner._backoff(a) for a in range(1, 4)] == [0.01, 0.02, 0.04]
    with pytest.raises(ValueError):
        SweepRunner(retry_jitter=-0.1)


# ----------------------------------------------------------------------
# The service loop, in-process
# ----------------------------------------------------------------------
async def _request(port, message):
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    writer.write((json.dumps(message) + "\n").encode())
    await writer.drain()
    line = await reader.readline()
    writer.close()
    return json.loads(line)


async def _drained(service):
    service.request_drain()
    await service._stopped.wait()


def _config(cache_dir=None, **kwargs):
    kwargs.setdefault("jobs", 1)
    kwargs.setdefault("sim", TINY)
    return ServiceConfig(cache_dir=cache_dir, **kwargs)


def test_service_cold_then_warm_requests(tmp_path, capsys):
    async def go():
        service = SweepService(_config(cache_dir=tmp_path / "cache"))
        await service.start()
        message = {"op": "sweep", "client": "t",
                   "points": [_wire_point(16), _wire_point(32)]}
        cold = await _request(service.port, message)
        warm = await _request(service.port, message)
        pong = await _request(service.port, {"op": "ping"})
        stats = await _request(service.port, {"op": "stats"})
        await _drained(service)
        return cold, warm, pong, stats

    cold, warm, pong, stats = asyncio.run(go())
    assert cold["status"] == warm["status"] == "ok"
    assert cold["sourcing"]["executed"] == 2
    assert warm["sourcing"]["executed"] == 0
    assert warm["sourcing"]["disk_hits"] == 2
    assert warm["sourcing"]["saved_seconds"] > 0
    # The deterministic halves are identical between cold and warm runs.
    assert cold["results"] == warm["results"]
    assert pong == {"status": "ok", "pong": True}
    payload = stats["stats"]
    assert payload["points_executed"] == 2 and payload["points_disk"] == 2
    assert payload["breaker"] == "closed" and payload["store_entries"] == 2
    assert "drained: journal flushed" in capsys.readouterr().err


def test_service_dedups_concurrent_identical_points():
    async def go():
        service = SweepService(_config())
        await service.start()
        message = {"op": "sweep",
                   "points": [_wire_point(16), _wire_point(32)]}
        a, b = await asyncio.gather(
            _request(service.port, dict(message, client="a")),
            _request(service.port, dict(message, client="b")),
        )
        await _drained(service)
        return a, b

    a, b = asyncio.run(go())
    assert a["status"] == b["status"] == "ok"
    executed = a["sourcing"]["executed"] + b["sourcing"]["executed"]
    deduped = a["sourcing"]["deduped"] + b["sourcing"]["deduped"]
    assert executed == 2 and deduped == 2             # each point ran once
    assert a["results"] == b["results"]
    assert sum(s["saved_seconds"] for s in
               (a["sourcing"], b["sourcing"])) > 0


def test_service_budget_degrades_overflow_to_analytic():
    async def go():
        service = SweepService(_config())
        await service.start()
        response = await _request(service.port, {
            "op": "sweep", "client": "t", "budget": 1,
            "points": [_wire_point(16), _wire_point(32), _wire_point(64)],
        })
        await _drained(service)
        return response

    response = asyncio.run(go())
    assert response["status"] == "ok"
    assert response["sourcing"]["executed"] == 1
    assert response["sourcing"]["degraded"] == 2
    degraded = [r for r in response["results"] if r["degraded"]]
    assert len(degraded) == 2
    assert all(r["kind"] == "analytic" and r["iteration_time"] > 0
               for r in degraded)


def test_service_rejects_over_budget_when_degradation_forbidden():
    async def go():
        service = SweepService(_config())
        await service.start()
        refused = await _request(service.port, {
            "op": "sweep", "client": "t", "budget": 0, "degrade": False,
            "points": [_wire_point(16)],
        })
        async_over = await _request(service.port, {
            "op": "sweep", "client": "t", "budget": 0,
            "points": [dict(_wire_point(16), mode="async")],
        })
        await _drained(service)
        return refused, async_over

    refused, async_over = asyncio.run(go())
    assert refused["status"] == "rejected" and refused["reason"] == "budget"
    # Async points cannot degrade, so the whole request is refused too.
    assert async_over["status"] == "rejected"
    assert async_over["reason"] == "budget"


def test_service_rejects_while_draining_and_malformed_lines():
    async def go():
        service = SweepService(_config())
        await service.start()
        bad = await _request(service.port, {"op": "sweep", "points": "nope"})
        garbage = await _request(service.port, {"op": "teleport"})
        service.draining = True                       # drain announced
        shed = await _request(service.port, {
            "op": "sweep", "client": "late", "points": [_wire_point()],
        })
        service.draining = False
        await _drained(service)
        return bad, garbage, shed

    bad, garbage, shed = asyncio.run(go())
    assert bad["status"] == "error" and "points" in bad["error"]
    assert garbage["status"] == "error"
    assert shed["status"] == "rejected" and shed["reason"] == "draining"


def test_service_quota_returns_busy_under_concurrent_pressure():
    async def go():
        service = SweepService(_config(max_inflight_per_client=1))
        await service.start()
        message = {"op": "sweep", "client": "greedy",
                   "points": [_wire_point(16), _wire_point(32)]}
        responses = await asyncio.gather(*(
            _request(service.port, message) for _ in range(4)))
        await _drained(service)
        return responses

    responses = asyncio.run(go())
    statuses = sorted(r["status"] for r in responses)
    assert "ok" in statuses and "busy" in statuses
    for response in responses:
        if response["status"] == "busy":
            assert response["reason"] == "quota"


# ----------------------------------------------------------------------
# Per-request service stats in the obs JSONL exporter
# ----------------------------------------------------------------------
#: Fixed event stream behind the service JSONL golden file.
SERVICE_GOLDEN_EVENTS = (
    ServiceRequestEvent(client="ci-a", status="ok", points=4, executed=2,
                        disk_hits=1, deduped=1, degraded=0, shed_reason="",
                        elapsed=0.25),
    ServiceRequestEvent(client="ci-b", status="ok", points=4, executed=0,
                        disk_hits=2, deduped=0, degraded=2, shed_reason="",
                        elapsed=0.0125),
    ServiceRequestEvent(client="ci-b", status="busy", points=4, executed=0,
                        disk_hits=0, deduped=0, degraded=0,
                        shed_reason="quota", elapsed=0.0001),
    ServiceRequestEvent(client="ci-c", status="rejected", points=2,
                        executed=0, disk_hits=0, deduped=0, degraded=0,
                        shed_reason="draining", elapsed=0.0002),
)


def test_service_jsonl_output_matches_golden():
    buf = io.StringIO()
    count = write_events_jsonl(SERVICE_GOLDEN_EVENTS, buf)
    golden = (GOLDEN_DIR / "service_events.jsonl").read_text()
    assert count == 4
    assert buf.getvalue() == golden


def test_service_request_events_are_json_clean():
    for event in SERVICE_GOLDEN_EVENTS:
        payload = event_to_dict(event)
        assert payload["type"] == "ServiceRequestEvent"
        json.dumps(payload)


def test_service_publishes_request_events_on_its_bus():
    bus = EventBus()
    recorder = JsonlRecorder(bus)

    async def go():
        service = SweepService(_config(), bus=bus)
        await service.start()
        await _request(service.port, {
            "op": "sweep", "client": "obs", "budget": 1,
            "points": [_wire_point(16), _wire_point(32)],
        })
        service.draining = True
        await _request(service.port, {
            "op": "sweep", "client": "late", "points": [_wire_point()],
        })
        service.draining = False
        await _drained(service)

    asyncio.run(go())
    events = [e for e in recorder.events
              if isinstance(e, ServiceRequestEvent)]
    assert len(events) == 2
    ok, shed = events
    assert ok.client == "obs" and ok.status == "ok"
    assert ok.points == 2 and ok.executed == 1 and ok.degraded == 1
    assert ok.shed_reason == "" and ok.elapsed > 0
    assert shed.client == "late" and shed.status == "rejected"
    assert shed.shed_reason == "draining"
