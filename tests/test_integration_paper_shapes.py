"""Integration tests asserting the paper's qualitative findings.

Each test corresponds to a claim in the evaluation section; tolerances are
loose (the substrate is a simulator, not the authors' testbed) but the
*shape* -- who wins, roughly by what factor, where crossovers fall -- must
hold.  See EXPERIMENTS.md for the full paper-vs-measured record.
"""

import pytest

from repro.core.config import CommMethodName, ScalingMode, SimulationConfig
from repro.experiments.runner import RunCache

SIM = SimulationConfig(warmup_iterations=1, measure_iterations=2)


@pytest.fixture(scope="module")
def cache():
    return RunCache(sim=SIM)


def speedup(cache, net, batch, gpus, method, scaling=ScalingMode.STRONG):
    base = cache.get(net, batch, 1, method, scaling)
    result = cache.get(net, batch, gpus, method, scaling)
    return result.speedup_over(base)


# ----------------------------------------------------------------------
# Section V-A: P2P vs NCCL training time (Figure 3)
# ----------------------------------------------------------------------
def test_lenet_p2p_speedups_match_paper(cache):
    """Paper: 1.62 / 2.37 / 3.36 at 2 / 4 / 8 GPUs (batch 16, P2P)."""
    assert speedup(cache, "lenet", 16, 2, CommMethodName.P2P) == pytest.approx(1.62, rel=0.12)
    assert speedup(cache, "lenet", 16, 4, CommMethodName.P2P) == pytest.approx(2.37, rel=0.12)
    assert speedup(cache, "lenet", 16, 8, CommMethodName.P2P) == pytest.approx(3.36, rel=0.12)


def test_lenet_nccl_speedups_match_paper(cache):
    """Paper: 1.56 / 2.27 / 2.77 at 2 / 4 / 8 GPUs (batch 16, NCCL)."""
    assert speedup(cache, "lenet", 16, 2, CommMethodName.NCCL) == pytest.approx(1.56, rel=0.12)
    assert speedup(cache, "lenet", 16, 4, CommMethodName.NCCL) == pytest.approx(2.27, rel=0.12)
    assert speedup(cache, "lenet", 16, 8, CommMethodName.NCCL) == pytest.approx(2.77, rel=0.12)


def test_p2p_beats_nccl_for_small_networks(cache):
    """Paper: P2P outperforms NCCL for LeNet and AlexNet at every scale."""
    for net in ("lenet", "alexnet"):
        for gpus in (2, 4, 8):
            p2p = cache.get(net, 16, gpus, CommMethodName.P2P)
            nccl = cache.get(net, 16, gpus, CommMethodName.NCCL)
            assert p2p.epoch_time < nccl.epoch_time, (net, gpus)


def test_nccl_beats_p2p_for_large_networks(cache):
    """Paper: NCCL wins for GoogLeNet/ResNet/Inception-v3 at 4 and 8 GPUs,
    by roughly 1.1x at 4 GPUs and 1.2-1.25x at 8 GPUs."""
    for net in ("googlenet", "resnet", "inception-v3"):
        for gpus, low, high in ((4, 1.03, 1.35), (8, 1.05, 1.45)):
            p2p = cache.get(net, 16, gpus, CommMethodName.P2P)
            nccl = cache.get(net, 16, gpus, CommMethodName.NCCL)
            advantage = p2p.epoch_time / nccl.epoch_time
            assert low <= advantage <= high, (net, gpus, advantage)


def test_batch_size_nearly_halves_epoch_time(cache):
    """Paper: LeNet 4-GPU P2P trains 1.92x / 3.67x faster at batch 32/64."""
    base = cache.get("lenet", 16, 4, CommMethodName.P2P).epoch_time
    b32 = cache.get("lenet", 32, 4, CommMethodName.P2P).epoch_time
    b64 = cache.get("lenet", 64, 4, CommMethodName.P2P).epoch_time
    assert base / b32 == pytest.approx(1.92, rel=0.1)
    assert base / b64 == pytest.approx(3.67, rel=0.12)


def test_two_gpu_speedup_at_most_1_8(cache):
    """Paper: going 1 -> 2 GPUs yields up to ~1.8x."""
    for net in ("lenet", "resnet", "googlenet", "inception-v3"):
        s = speedup(cache, net, 16, 2, CommMethodName.P2P)
        assert s <= 2.0, (net, s)
    best = max(
        speedup(cache, net, 16, 2, CommMethodName.P2P)
        for net in ("resnet", "googlenet", "inception-v3")
    )
    assert best == pytest.approx(1.85, abs=0.15)


# ----------------------------------------------------------------------
# Section V-B: NCCL overhead (Table II)
# ----------------------------------------------------------------------
def test_nccl_single_gpu_overhead_lenet(cache):
    """Paper: ~21.8% overhead for LeNet at batch 16 on one GPU."""
    p2p = cache.get("lenet", 16, 1, CommMethodName.P2P)
    nccl = cache.get("lenet", 16, 1, CommMethodName.NCCL)
    overhead = nccl.epoch_time / p2p.epoch_time - 1.0
    assert overhead == pytest.approx(0.218, abs=0.06)


def test_nccl_overhead_rises_with_batch_for_lenet(cache):
    overheads = []
    for batch in (16, 32, 64):
        p2p = cache.get("lenet", batch, 1, CommMethodName.P2P)
        nccl = cache.get("lenet", batch, 1, CommMethodName.NCCL)
        overheads.append(nccl.epoch_time / p2p.epoch_time - 1.0)
    assert overheads[0] < overheads[1] < overheads[2]


def test_nccl_overhead_small_for_large_networks(cache):
    """Paper: within a few points for ResNet/GoogLeNet/Inception-v3."""
    for net in ("resnet", "googlenet", "inception-v3"):
        for batch in (16, 64):
            p2p = cache.get(net, batch, 1, CommMethodName.P2P)
            nccl = cache.get(net, batch, 1, CommMethodName.NCCL)
            overhead = nccl.epoch_time / p2p.epoch_time - 1.0
            assert overhead < 0.12, (net, batch, overhead)


# ----------------------------------------------------------------------
# Section V-C: training-time breakdown (Figure 4, Table III)
# ----------------------------------------------------------------------
def test_fp_bp_dominates_training(cache):
    """Paper: computation dominates as GPU count grows."""
    for net in ("googlenet", "inception-v3"):
        r = cache.get(net, 16, 8, CommMethodName.NCCL)
        assert r.stages.fp_bp > r.stages.wu


def test_inception_fp_bp_scales_near_linearly(cache):
    """Paper: near-ideal FP+BP scaling for Inception-v3 at batch 16."""
    two = cache.get("inception-v3", 16, 2, CommMethodName.NCCL)
    eight = cache.get("inception-v3", 16, 8, CommMethodName.NCCL)
    # per-epoch FP+BP should drop by ~4x going 2 -> 8 GPUs
    ratio = two.epoch_fp_bp_time / eight.epoch_fp_bp_time
    assert ratio == pytest.approx(4.0, rel=0.15)


def test_lenet_fp_bp_scales_non_linearly(cache):
    """Paper: LeNet cannot amortize CUDA API overhead."""
    two = cache.get("lenet", 16, 2, CommMethodName.NCCL)
    eight = cache.get("lenet", 16, 8, CommMethodName.NCCL)
    ratio = two.epoch_fp_bp_time / eight.epoch_fp_bp_time
    assert ratio < 3.5


def test_lenet_wu_per_epoch_decreases_with_gpus(cache):
    """Paper: WU time decreases almost linearly from 2 to 8 GPUs."""
    wu = [
        cache.get("lenet", 16, g, CommMethodName.NCCL).epoch_wu_time
        for g in (2, 4, 8)
    ]
    assert wu[0] > wu[1] > wu[2]


def test_sync_dominates_api_time_for_lenet(cache):
    """Paper: cudaStreamSynchronize consumes most time among all APIs."""
    r = cache.get("lenet", 16, 8, CommMethodName.NCCL)
    assert r.apis.totals[0][0] == "cudaStreamSynchronize"
    assert r.apis.percent_of("cudaStreamSynchronize") > 50


def test_sync_share_grows_with_gpu_count(cache):
    one = cache.get("lenet", 16, 1, CommMethodName.NCCL)
    eight = cache.get("lenet", 16, 8, CommMethodName.NCCL)
    assert (
        eight.apis.percent_of("cudaStreamSynchronize")
        >= one.apis.percent_of("cudaStreamSynchronize") - 1.0
    )


# ----------------------------------------------------------------------
# Section V-E: weak scaling (Figure 5)
# ----------------------------------------------------------------------
def test_weak_scaling_beats_strong_for_lenet(cache):
    weak = speedup(cache, "lenet", 16, 8, CommMethodName.NCCL, ScalingMode.WEAK)
    strong = speedup(cache, "lenet", 16, 8, CommMethodName.NCCL, ScalingMode.STRONG)
    assert weak > strong


def test_weak_scaling_gain_bounded_for_large_networks(cache):
    """Paper: less than ~17% above strong scaling for the big three."""
    for net in ("resnet", "googlenet", "inception-v3"):
        weak = speedup(cache, net, 16, 8, CommMethodName.NCCL, ScalingMode.WEAK)
        strong = speedup(cache, net, 16, 8, CommMethodName.NCCL, ScalingMode.STRONG)
        assert weak >= strong * 0.999
        assert weak <= strong * 1.17, (net, weak, strong)
