"""Tests for the paper-anchor validation module."""

import pytest

from repro.analysis.validation import (
    PAPER_ANCHORS,
    AnchorVerdict,
    PaperAnchor,
    ValidationReport,
    render,
    validate,
)
from repro.core.config import SimulationConfig
from repro.experiments.runner import RunCache

FAST = SimulationConfig(warmup_iterations=1, measure_iterations=2)


def test_anchor_catalogue_covers_every_artifact():
    sources = {a.source.split("/")[0] for a in PAPER_ANCHORS}
    assert {"Fig.3", "Table II", "Sec.V-A", "Sec.V-C", "Table IV", "Fig.5",
            "Sec.V-E"} <= sources
    ids = [a.anchor_id for a in PAPER_ANCHORS]
    assert len(ids) == len(set(ids))


def test_value_anchor_verdict():
    anchor = PaperAnchor("x", "s", "d", lambda c: 1.0, expected=1.1, rel_tol=0.15)
    assert AnchorVerdict(anchor, 1.0).passed
    assert not AnchorVerdict(anchor, 2.0).passed


def test_ordering_anchor_verdict():
    anchor = PaperAnchor("x", "s", "d", lambda c: 0.0, ordering=True)
    assert AnchorVerdict(anchor, 0.5).passed
    assert not AnchorVerdict(anchor, -0.5).passed
    assert not AnchorVerdict(anchor, 0.0).passed


def test_validate_subset_runs():
    subset = [a for a in PAPER_ANCHORS if a.anchor_id.startswith("t4-")]
    report = validate(RunCache(sim=FAST), anchors=subset)
    assert report.total == len(subset)
    assert report.passed == report.total


def test_full_validation_passes():
    """Every encoded paper anchor holds under the fast simulation config."""
    report = validate(RunCache(sim=FAST))
    failed = [v.anchor.anchor_id for v in report.verdicts if not v.passed]
    assert report.all_passed, failed


def test_render_contains_verdicts():
    subset = [a for a in PAPER_ANCHORS if a.anchor_id == "t4-alexnet-64"]
    report = validate(RunCache(sim=FAST), anchors=subset)
    text = render(report)
    assert "PASS" in text
    assert "1/1 anchors passed" in text
