"""Tests for the analysis package: scaling laws, crossover, serialization."""

import json

import pytest

from repro import CommMethodName, SimulationConfig, TrainingConfig, train
from repro.analysis import (
    CrossoverStudy,
    result_from_dict,
    result_to_dict,
    scaling_curve,
    synthetic_conv_network,
)
from repro.analysis.scaling import ScalingCurve, compare_efficiency, karp_flatt
from repro.core.errors import ConfigurationError
from repro.dnn import compile_network
from repro.analysis.crossover import SYNTHETIC_INPUT

FAST = SimulationConfig(warmup_iterations=1, measure_iterations=2)


# ----------------------------------------------------------------------
# Scaling metrics
# ----------------------------------------------------------------------
def test_karp_flatt_perfect_scaling_is_zero():
    assert karp_flatt(8.0, 8) == pytest.approx(0.0)


def test_karp_flatt_no_scaling_is_one():
    assert karp_flatt(1.0, 8) == pytest.approx(1.0)


def test_karp_flatt_half_efficiency():
    # S=4 on 8 GPUs -> e = (1/4 - 1/8) / (1 - 1/8) = 1/7
    assert karp_flatt(4.0, 8) == pytest.approx(1.0 / 7.0)


def test_karp_flatt_clamps_superlinear():
    assert karp_flatt(10.0, 8) == 0.0


def test_karp_flatt_validation():
    with pytest.raises(ConfigurationError):
        karp_flatt(2.0, 1)
    with pytest.raises(ConfigurationError):
        karp_flatt(0.0, 4)


@pytest.fixture(scope="module")
def lenet_curve():
    results = [
        train(TrainingConfig("lenet", 16, n, comm_method=CommMethodName.P2P),
              sim=FAST)
        for n in (1, 2, 4, 8)
    ]
    return scaling_curve(results)


def test_scaling_curve_structure(lenet_curve):
    assert lenet_curve.network == "lenet"
    assert lenet_curve.gpu_counts == (1, 2, 4, 8)
    assert lenet_curve.speedup(1) == 1.0
    assert lenet_curve.speedup(8) > lenet_curve.speedup(2)


def test_efficiency_decreases_with_gpus(lenet_curve):
    assert (
        lenet_curve.efficiency(1)
        > lenet_curve.efficiency(2)
        > lenet_curve.efficiency(4)
        > lenet_curve.efficiency(8)
    )


def test_serial_fraction_positive_for_lenet(lenet_curve):
    # LeNet's overheads imply a noticeable serial fraction.
    assert 0.05 < lenet_curve.serial_fraction() < 0.5


def test_scaling_curve_rejects_mixed_configs():
    a = train(TrainingConfig("lenet", 16, 1, comm_method=CommMethodName.P2P),
              sim=FAST)
    b = train(TrainingConfig("lenet", 32, 2, comm_method=CommMethodName.P2P),
              sim=FAST)
    with pytest.raises(ConfigurationError):
        scaling_curve([a, b])


def test_scaling_curve_requires_one_gpu_baseline():
    with pytest.raises(ConfigurationError):
        ScalingCurve("x", "p2p", 16, (2, 4), (1.0, 0.5))


def test_compare_efficiency(lenet_curve):
    table = compare_efficiency([lenet_curve], 8)
    assert table == {"lenet/p2p/b16": pytest.approx(lenet_curve.efficiency(8))}


# ----------------------------------------------------------------------
# Crossover study
# ----------------------------------------------------------------------
def test_synthetic_network_depth_controls_arrays():
    shallow = compile_network(synthetic_conv_network(2), SYNTHETIC_INPUT)
    deep = compile_network(synthetic_conv_network(16), SYNTHETIC_INPUT)
    assert deep.conv_layer_count == 16
    assert len(deep.weight_arrays) > 3 * len(shallow.weight_arrays)


def test_synthetic_network_rejects_bad_depth():
    with pytest.raises(ValueError):
        synthetic_conv_network(0)


def test_crossover_study_finds_nccl_win():
    """Deep synthetic stacks favour NCCL at 8 GPUs, shallow ones P2P."""
    study = CrossoverStudy(num_gpus=8, batch_size=16, sim=FAST)
    result = study.run(depths=(2, 24, 48))
    assert result.points[0].nccl_advantage < result.points[-1].nccl_advantage
    assert result.points[-1].nccl_advantage > 1.0
    assert result.crossover_depth is not None


# ----------------------------------------------------------------------
# Serialization
# ----------------------------------------------------------------------
def test_result_round_trips_through_json():
    original = train(
        TrainingConfig("alexnet", 16, 4, comm_method=CommMethodName.NCCL), sim=FAST
    )
    payload = json.loads(json.dumps(result_to_dict(original)))
    restored = result_from_dict(payload)
    assert restored.config == original.config
    assert restored.epoch_time == original.epoch_time
    assert restored.iteration_times == original.iteration_times
    assert restored.stages == original.stages
    assert restored.apis.totals == original.apis.totals
    assert restored.gpu_busy == original.gpu_busy
    assert restored.memory == original.memory
    assert restored.epoch_fp_bp_time == original.epoch_fp_bp_time


def test_unknown_schema_rejected():
    with pytest.raises(ValueError):
        result_from_dict({"schema": 99})
