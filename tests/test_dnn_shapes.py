"""Tests for shapes and shape arithmetic."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.errors import ShapeError
from repro.dnn.shapes import Shape, conv_output_hw


def test_shape_numel():
    assert Shape(3, 224, 224).numel == 3 * 224 * 224
    assert Shape(1000).numel == 1000


def test_shape_accessors():
    s = Shape(64, 28, 14)
    assert (s.channels, s.height, s.width) == (64, 28, 14)
    assert s.is_spatial


def test_flat_shape_features():
    assert Shape(4096).features == 4096
    assert not Shape(4096).is_spatial


def test_spatial_accessor_on_flat_shape_raises():
    with pytest.raises(ShapeError):
        _ = Shape(10).channels


def test_features_on_spatial_shape_raises():
    with pytest.raises(ShapeError):
        _ = Shape(3, 8, 8).features


def test_empty_shape_rejected():
    with pytest.raises(ShapeError):
        Shape()


@pytest.mark.parametrize("dims", [(0,), (-1, 2, 2), (3, 0, 5)])
def test_non_positive_dims_rejected(dims):
    with pytest.raises(ShapeError):
        Shape(*dims)


def test_shape_str():
    assert str(Shape(3, 224, 224)) == "3x224x224"


def test_shape_equality_and_hash():
    assert Shape(3, 2, 1) == Shape(3, 2, 1)
    assert Shape(3, 2, 1) != Shape(3, 1, 2)
    assert len({Shape(1, 2, 3), Shape(1, 2, 3)}) == 1


# ----------------------------------------------------------------------
# conv_output_hw
# ----------------------------------------------------------------------
def test_conv_output_known_values():
    assert conv_output_hw(224, 11, 4, 2) == 55   # AlexNet conv1
    assert conv_output_hw(32, 5, 1, 0) == 28     # LeNet c1
    assert conv_output_hw(299, 3, 2, 0) == 149   # Inception stem


def test_conv_output_kernel_too_large():
    with pytest.raises(ShapeError):
        conv_output_hw(4, 7, 1, 0)


@given(
    size=st.integers(min_value=1, max_value=512),
    kernel=st.integers(min_value=1, max_value=11),
    stride=st.integers(min_value=1, max_value=4),
    pad=st.integers(min_value=0, max_value=5),
)
def test_conv_output_bounds_property(size, kernel, stride, pad):
    """Output is positive and never exceeds the padded input extent."""
    padded = size + 2 * pad
    if padded < kernel:
        with pytest.raises(ShapeError):
            conv_output_hw(size, kernel, stride, pad)
        return
    out = conv_output_hw(size, kernel, stride, pad)
    assert 1 <= out <= padded
    # stride 1, no pad, kernel 1 is identity
    if stride == 1 and pad == 0 and kernel == 1:
        assert out == size


@given(
    size=st.integers(min_value=8, max_value=512),
    kernel=st.integers(min_value=1, max_value=7),
)
def test_conv_output_stride_monotone_property(size, kernel):
    """Larger stride never produces a larger output."""
    outs = [conv_output_hw(size, kernel, s, 0) for s in (1, 2, 4)]
    assert outs[0] >= outs[1] >= outs[2]
