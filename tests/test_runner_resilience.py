"""Tests for sweep-runner resilience: retries, timeouts, failure policies,
and cache-corruption recovery."""

import json
import time

import pytest

from repro.core.config import CommMethodName, SimulationConfig, TrainingConfig
from repro.core.constants import CALIBRATION
from repro.core.errors import SweepPointError
from repro.obs.bus import EventBus
from repro.obs.events import SweepPointFailed, SweepPointRetry
from repro.runner import (
    CacheCorruptionWarning,
    FailurePolicy,
    ResultStore,
    SweepPoint,
    SweepRunner,
    SweepSpec,
    point_fingerprint,
)

FAST = SimulationConfig(warmup_iterations=1, measure_iterations=2)
CONFIG = TrainingConfig("lenet", 16, 1, comm_method=CommMethodName.P2P)


def _crashing_builder():
    """A topology builder that always fails (module-level: pool-picklable)."""
    raise RuntimeError("injected topology crash")


def _hanging_builder():
    """A topology builder that never returns (module-level: pool-picklable)."""
    time.sleep(3600)


def _good_point(**kwargs):
    return SweepPoint.make(CONFIG, **kwargs)


def _crash_point():
    return SweepPoint.make(
        CONFIG, overrides={"topology_builder": _crashing_builder},
        tags={"bad": True},
    )


# ----------------------------------------------------------------------
# Failure recording and retry
# ----------------------------------------------------------------------
def test_crashing_point_recorded_after_retries():
    spec = SweepSpec.explicit("rec", [_good_point(), _crash_point()])
    runner = SweepRunner(sim=FAST, retries=2, retry_backoff=0.001)
    results = runner.run(spec)
    assert results.outcomes[0].ok
    bad = results.outcomes[1]
    assert not bad.ok
    assert bad.failure.error_type == "RuntimeError"
    assert bad.failure.attempts == 3              # 1 initial + 2 retries
    assert not bad.failure.timed_out
    assert runner.stats.retried == 2
    assert runner.stats.failed == 1
    assert "2 retried, 1 failed" in runner.stats.describe()
    with pytest.raises(SweepPointError, match="after 3 attempt"):
        results.result(bad=True)
    assert results.try_result(bad=True) is None


def test_failure_policy_raise_and_skip():
    points = [_good_point(), _crash_point()]
    with pytest.raises(SweepPointError):
        SweepRunner(sim=FAST, retries=0).run(
            SweepSpec.explicit("r", points, failure_policy=FailurePolicy.RAISE)
        )
    skipped = SweepRunner(sim=FAST, retries=0).run(
        SweepSpec.explicit("s", points, failure_policy=FailurePolicy.SKIP)
    )
    assert len(skipped) == 1 and skipped.outcomes[0].ok


def test_failures_never_memoized_or_persisted(tmp_path):
    spec = SweepSpec.explicit("nomemo", [_crash_point()])
    runner = SweepRunner(sim=FAST, retries=0, store=ResultStore(tmp_path))
    runner.run(spec)
    runner.run(spec)
    assert runner.stats.executed == 2             # re-attempted, not memoized
    assert len(ResultStore(tmp_path)) == 0        # never written to disk


def test_retry_and_failure_events_published():
    bus = EventBus()
    retries, failures = [], []
    bus.subscribe(SweepPointRetry, retries.append)
    bus.subscribe(SweepPointFailed, failures.append)
    runner = SweepRunner(sim=FAST, retries=1, retry_backoff=0.001, bus=bus)
    runner.run(SweepSpec.explicit("evt", [_crash_point()]))
    assert len(retries) == 1
    assert retries[0].attempt == 1 and retries[0].max_attempts == 2
    assert retries[0].backoff == pytest.approx(0.001)
    assert len(failures) == 1
    assert failures[0].attempts == 2
    assert "injected topology crash" in failures[0].reason


def test_pool_execution_records_failures_too():
    spec = SweepSpec.explicit("pool", [_good_point(), _crash_point()])
    runner = SweepRunner(sim=FAST, jobs=2, retries=1, retry_backoff=0.001)
    results = runner.run(spec)
    assert results.outcomes[0].ok
    assert not results.outcomes[1].ok
    assert results.outcomes[1].failure.attempts == 2
    assert runner.stats.retried == 1 and runner.stats.failed == 1


def test_runner_validates_resilience_knobs():
    with pytest.raises(ValueError):
        SweepRunner(retries=-1)
    with pytest.raises(ValueError):
        SweepRunner(retry_backoff=-0.1)
    with pytest.raises(ValueError):
        SweepRunner(point_timeout=0.0)


# ----------------------------------------------------------------------
# Per-point wall-clock timeout
# ----------------------------------------------------------------------
def test_hanging_point_times_out_and_sweep_completes():
    hang = SweepPoint.make(
        CONFIG, overrides={"topology_builder": _hanging_builder},
        tags={"hang": True},
    )
    spec = SweepSpec.explicit("t", [_good_point(), hang])
    start = time.monotonic()
    runner = SweepRunner(sim=FAST, jobs=2, point_timeout=1.0, retries=3)
    results = runner.run(spec)
    elapsed = time.monotonic() - start
    assert elapsed < 30.0                         # did not wait for the hang
    assert results.outcomes[0].ok
    bad = results.outcomes[1]
    assert bad.failure.timed_out
    assert bad.failure.error_type == "TimeoutError"
    assert bad.failure.attempts == 1              # timeouts are not retried
    assert runner.stats.failed == 1 and runner.stats.retried == 0


def test_serial_runner_with_timeout_routes_through_pool():
    hang = SweepPoint.make(
        CONFIG, overrides={"topology_builder": _hanging_builder},
    )
    runner = SweepRunner(sim=FAST, jobs=1, point_timeout=1.0, retries=0)
    results = runner.run(SweepSpec.explicit("t1", [hang]))
    assert results.outcomes[0].failure.timed_out


# ----------------------------------------------------------------------
# Cache corruption: warned miss + atomic repair
# ----------------------------------------------------------------------
def _key(point):
    return point_fingerprint(point, FAST, CALIBRATION)


def test_corrupted_cache_file_is_a_warned_miss(tmp_path):
    point = _good_point()
    first = SweepRunner(sim=FAST, store=ResultStore(tmp_path))
    first.run(SweepSpec.explicit("c", [point]))
    path = ResultStore(tmp_path).path_for(_key(point))
    assert path.is_file()
    path.write_text('{"truncat')                  # simulate a torn write

    second = SweepRunner(sim=FAST, store=ResultStore(tmp_path))
    with pytest.warns(CacheCorruptionWarning, match="invalid JSON"):
        second.run(SweepSpec.explicit("c", [point]))
    assert second.stats.executed == 1             # re-simulated
    # ... and the bad file was atomically repaired:
    third = SweepRunner(sim=FAST, store=ResultStore(tmp_path))
    third.run(SweepSpec.explicit("c", [point]))
    assert third.stats.executed == 0 and third.stats.disk_hits == 1


@pytest.mark.parametrize("payload,why", [
    ("[1, 2, 3]", "not a schema-stamped"),
    ('{"kind": "training", "result": {}}', "not a schema-stamped"),
    ('"just a string"', "not a schema-stamped"),
])
def test_unstamped_cache_payloads_warn_and_miss(tmp_path, payload, why):
    store = ResultStore(tmp_path)
    store.root.mkdir(parents=True, exist_ok=True)
    store.path_for("k").write_text(payload)
    with pytest.warns(CacheCorruptionWarning, match=why):
        assert store.load("k") is None


def test_unknown_kind_and_missing_fields_warn_and_miss(tmp_path):
    from repro.analysis.serialization import SCHEMA_VERSION

    store = ResultStore(tmp_path)
    store.root.mkdir(parents=True, exist_ok=True)
    store.path_for("k").write_text(
        json.dumps({"schema": SCHEMA_VERSION, "kind": "exotic", "result": {}})
    )
    with pytest.warns(CacheCorruptionWarning, match="unknown result kind"):
        assert store.load("k") is None
    store.path_for("k").write_text(
        json.dumps({"schema": SCHEMA_VERSION, "kind": "oom",
                    "result": {"device": "gpu0"}})
    )
    with pytest.warns(CacheCorruptionWarning, match="missing/invalid"):
        assert store.load("k") is None


def test_store_write_is_atomic(tmp_path, monkeypatch):
    """A crash mid-write must leave neither the entry nor temp litter."""
    point = _good_point()
    result = SweepRunner(sim=FAST).run_point(point)
    store = ResultStore(tmp_path)
    store.store("good", result)

    def boom(*args, **kwargs):
        raise KeyboardInterrupt("killed mid-write")

    monkeypatch.setattr(json, "dump", boom)
    with pytest.raises(KeyboardInterrupt):
        store.store("partial", result)
    monkeypatch.undo()
    assert store.load("partial") is None          # plain miss, no warning
    assert store.load("good") is not None         # neighbors untouched
    assert not list(tmp_path.glob("*.tmp"))       # temp file cleaned up
