"""Tests for the kernel cost model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.constants import CALIBRATION
from repro.dnn import build_network, compile_network, network_input_shape
from repro.gpu import KernelCostModel
from repro.gpu.spec import TESLA_V100


@pytest.fixture(scope="module")
def model():
    return KernelCostModel()


@pytest.fixture(scope="module")
def lenet_stats():
    return compile_network(build_network("lenet"), network_input_shape("lenet"))


@pytest.fixture(scope="module")
def inception_stats():
    return compile_network(
        build_network("inception-v3"), network_input_shape("inception-v3")
    )


def test_empty_kernel_costs_launch_overhead(model):
    assert model.kernel_time(0, 0, matmul=False) == pytest.approx(
        CALIBRATION.kernel_launch_overhead
    )


def test_kernel_time_monotone_in_flops(model):
    times = [model.kernel_time(f, 0, matmul=True) for f in (1e6, 1e8, 1e10)]
    assert times[0] < times[1] < times[2]


def test_kernel_time_monotone_in_bytes(model):
    times = [model.kernel_time(0, b, matmul=False) for b in (1e4, 1e6, 1e8)]
    assert times[0] < times[1] < times[2]


def test_big_kernel_approaches_peak(model):
    flops = 1e12
    t = model.kernel_time(flops, 0, matmul=False) - CALIBRATION.kernel_launch_overhead
    achieved = flops / t
    assert achieved > 0.7 * TESLA_V100.fp32_flops * CALIBRATION.max_compute_efficiency


def test_tensor_cores_accelerate_matmul(model):
    no_tc = KernelCostModel(use_tensor_cores=False)
    flops = 1e10
    assert model.kernel_time(flops, 0, matmul=True) < no_tc.kernel_time(
        flops, 0, matmul=True
    )


def test_tensor_cores_ignored_for_non_matmul(model):
    no_tc = KernelCostModel(use_tensor_cores=False)
    flops = 1e9
    assert model.kernel_time(flops, 0, matmul=False) == pytest.approx(
        no_tc.kernel_time(flops, 0, matmul=False)
    )


@settings(max_examples=60, deadline=None)
@given(
    flops=st.floats(min_value=0, max_value=1e12),
    nbytes=st.floats(min_value=0, max_value=1e9),
    matmul=st.booleans(),
)
def test_kernel_time_bounds_property(model, flops, nbytes, matmul):
    """Never faster than peak, never slower than a fixed floor rate."""
    t = model.kernel_time(flops, nbytes, matmul)
    assert t >= CALIBRATION.kernel_launch_overhead
    if flops > 0:
        # can't beat the tensor-core peak
        assert flops / (t - CALIBRATION.kernel_launch_overhead + 1e-12) <= (
            TESLA_V100.tensor_flops
        )


@settings(max_examples=30, deadline=None)
@given(
    batch1=st.integers(min_value=1, max_value=32),
    factor=st.integers(min_value=2, max_value=4),
)
def test_iteration_time_subadditive_in_batch(model, lenet_stats, batch1, factor):
    """Doubling batch less than doubles time (efficiency grows)."""
    t1 = model.iteration_compute_time(lenet_stats, batch1)
    t2 = model.iteration_compute_time(lenet_stats, batch1 * factor)
    assert t1 < t2 < factor * t1


def test_forward_schedule_covers_all_layers(model, lenet_stats):
    kernels = model.forward_schedule(lenet_stats, 16)
    layers_with_kernels = {k.layer for k in kernels}
    expected = {l.name for l in lenet_stats.layers if l.kind.value != "reshape"}
    assert layers_with_kernels == expected


def test_backward_schedule_reverse_order(model, lenet_stats):
    schedule = model.backward_schedule(lenet_stats, 16)
    names = [layer.name for layer, _ in schedule]
    assert names == [l.name for l in reversed(lenet_stats.layers)]


def test_backward_has_dgrad_and_wgrad(model, lenet_stats):
    schedule = dict(
        (layer.name, kernels) for layer, kernels in model.backward_schedule(lenet_stats, 16)
    )
    conv_kernels = schedule["c1"]
    assert [k.name for k in conv_kernels] == ["c1.dgrad", "c1.wgrad"]


def test_network_compute_ordering(model, lenet_stats, inception_stats):
    assert model.iteration_compute_time(lenet_stats, 16) < (
        model.iteration_compute_time(inception_stats, 16)
    )


def test_realistic_throughput_ranges(model, inception_stats):
    """Inception-v3 on a V100 lands in the published throughput range."""
    t = model.iteration_compute_time(inception_stats, 32)
    images_per_second = 32 / t
    assert 250 <= images_per_second <= 900


def test_compute_utilization_bounds(model, lenet_stats, inception_stats):
    for stats in (lenet_stats, inception_stats):
        for batch in (16, 64):
            u = model.compute_utilization(stats, batch)
            assert 0.0 <= u <= 1.0
    # big networks utilize better
    assert model.compute_utilization(inception_stats, 64) > (
        model.compute_utilization(lenet_stats, 64)
    )
