"""Tests for repro.faults: plans, injection, recovery, determinism, goldens."""

import json
import pathlib

import pytest

from repro.core.config import CommMethodName, SimulationConfig, TrainingConfig
from repro.core.constants import CALIBRATION
from repro.core.errors import FaultPlanError, WorkerCrashError
from repro.faults import (
    CrashFault,
    EccFault,
    EccModel,
    FaultInjector,
    FaultPlan,
    LinkFault,
    RecoveryCosts,
    ResiliencePolicy,
    SlowdownProfile,
    StragglerFault,
    degraded_topology,
)
from repro.gpu.kernel import KernelSpec
from repro.runner import SweepPoint, SweepRunner, SweepSpec, point_fingerprint
from repro.topology import build_dgx1v
from repro.topology.links import LinkType
from repro.train import Trainer

FAST = SimulationConfig(warmup_iterations=1, measure_iterations=2)
CONFIG = TrainingConfig("lenet", 16, 4, comm_method=CommMethodName.NCCL)

GOLDEN_DIR = pathlib.Path(__file__).parent / "golden" / "artifacts"


def _nvlink(topology, a=0, b=1):
    node_a, node_b = topology.gpu(a), topology.gpu(b)
    return sorted(
        link.name
        for link in topology.links_of(node_a)
        if link.link_type is LinkType.NVLINK and node_b in link.endpoints()
    )[0]


# ----------------------------------------------------------------------
# Plan validation
# ----------------------------------------------------------------------
def test_link_fault_validation():
    with pytest.raises(FaultPlanError):
        LinkFault("l", bandwidth_scale=1.0)      # no-op scale
    with pytest.raises(FaultPlanError):
        LinkFault("l", at=5.0, until=5.0)        # empty window
    with pytest.raises(FaultPlanError):
        LinkFault("l", at=-1.0)


def test_straggler_and_ecc_validation():
    with pytest.raises(FaultPlanError):
        StragglerFault(gpu=0, factor=0.0)
    with pytest.raises(FaultPlanError):
        StragglerFault(gpu=-1, factor=2.0)
    with pytest.raises(FaultPlanError):
        EccFault(gpu=0, retry_latency=0.0)


def test_crash_validation():
    with pytest.raises(FaultPlanError):
        CrashFault(gpu=0, at_iteration=0)
    with pytest.raises(FaultPlanError):
        FaultPlan(crashes=(CrashFault(0, 1), CrashFault(1, 2)))


def test_recovery_costs_validation():
    with pytest.raises(FaultPlanError):
        RecoveryCosts(ring_rebuild=-1.0)
    with pytest.raises(FaultPlanError):
        RecoveryCosts(checkpoint_interval=0)


def test_slowdown_profile_validation_and_lookup():
    with pytest.raises(FaultPlanError):
        SlowdownProfile(steps=())
    with pytest.raises(FaultPlanError):
        SlowdownProfile(steps=((1.0, 2.0),))         # must start at 0
    with pytest.raises(FaultPlanError):
        SlowdownProfile(steps=((0.0, 1.0), (0.0, 2.0)))
    with pytest.raises(FaultPlanError):
        SlowdownProfile(steps=((0.0, -1.0),))
    p = SlowdownProfile(steps=((0.0, 1.0), (2.0, 1.8), (4.0, 1.2)))
    assert p.at(0.0) == 1.0
    assert p.at(1.999) == 1.0
    assert p.at(2.0) == 1.8
    assert p.at(100.0) == 1.2
    assert p.peak == 1.8
    assert p.scaled(2.0).at(3.0) == pytest.approx(3.6)


# ----------------------------------------------------------------------
# Injector queries
# ----------------------------------------------------------------------
def test_injector_link_scale_overlap_and_windows():
    plan = FaultPlan(link_faults=(
        LinkFault("l", at=1.0, bandwidth_scale=0.5, until=10.0),
        LinkFault("l", at=5.0, bandwidth_scale=0.25, until=8.0),
    ))
    inj = FaultInjector(plan)
    assert inj.link_scale("l", 0.5) == 1.0
    assert inj.link_scale("l", 1.0) == 0.5        # half-open: at <= t
    assert inj.link_scale("l", 6.0) == 0.25       # min of active faults
    assert inj.link_scale("l", 9.0) == 0.5
    assert inj.link_scale("l", 10.0) == 1.0       # half-open: t < until
    assert inj.boundaries() == (1.0, 5.0, 8.0, 10.0)


def test_injector_gpu_factor_is_multiplicative():
    plan = FaultPlan(stragglers=(
        StragglerFault(gpu=0, factor=1.5, at=0.0),
        StragglerFault(gpu=0, factor=2.0, at=2.0),
    ))
    inj = FaultInjector(plan)
    assert inj.gpu_factor(0, 1.0) == pytest.approx(1.5)
    assert inj.gpu_factor(0, 3.0) == pytest.approx(3.0)
    assert inj.gpu_factor(1, 3.0) == 1.0


def test_injector_ecc_model_taxes_memory_bound_kernels():
    plan = FaultPlan(ecc_faults=(EccFault(gpu=0, retry_latency=1e-5, at=2.0),))
    inj = FaultInjector(plan)
    assert inj.ecc_model(0, 0.0) is None          # not active yet
    model = inj.ecc_model(0, 3.0)
    assert isinstance(model, EccModel)
    wu = KernelSpec("wu", "l", "wu", duration=1e-3, flops=100, bytes_moved=100)
    conv = KernelSpec("conv", "l", "fp", duration=1e-3, flops=10000,
                      bytes_moved=100)
    assert model.delay(wu) == pytest.approx(1e-5)  # intensity 1 < ridge
    assert model.delay(conv) == 0.0                # compute-bound


# ----------------------------------------------------------------------
# Degraded topology view
# ----------------------------------------------------------------------
def test_degraded_topology_identity_when_inactive():
    topology = build_dgx1v()
    inj = FaultInjector(FaultPlan.single_link(_nvlink(topology), at=5.0))
    assert degraded_topology(topology, inj, 0.0) is topology


def test_degraded_topology_drops_failed_nvlink():
    topology = build_dgx1v()
    name = _nvlink(topology)
    inj = FaultInjector(FaultPlan.single_link(name, at=5.0))
    degraded = degraded_topology(topology, inj, 5.0)
    assert degraded is not topology
    assert any(l.name == name for l in topology.links)
    assert not any(l.name == name for l in degraded.links)


def test_degraded_topology_scales_bandwidth():
    topology = build_dgx1v()
    name = _nvlink(topology)
    inj = FaultInjector(FaultPlan.single_link(name, bandwidth_scale=0.5))
    degraded = degraded_topology(topology, inj, 0.0)
    before = next(l for l in topology.links if l.name == name)
    after = next(l for l in degraded.links if l.name == name)
    assert after.peak_bandwidth() == pytest.approx(before.peak_bandwidth() * 0.5)


# ----------------------------------------------------------------------
# Trainer integration
# ----------------------------------------------------------------------
def test_empty_plan_identical_to_no_faults():
    from repro.analysis.serialization import result_to_dict

    base = Trainer(CONFIG, sim=FAST).run()
    empty = Trainer(CONFIG, sim=FAST, faults=FaultPlan()).run()
    assert result_to_dict(empty) == result_to_dict(base)
    assert empty.faults is None


def test_faults_kwarg_type_checked():
    with pytest.raises(FaultPlanError):
        Trainer(CONFIG, sim=FAST, faults="link down please")


def test_crash_gpu_must_participate():
    plan = FaultPlan(crashes=(CrashFault(gpu=7, at_iteration=10),),
                     policy=ResiliencePolicy.SHRINK)
    with pytest.raises(FaultPlanError):
        Trainer(CONFIG, sim=FAST, faults=plan).run()


def test_full_time_straggler_matches_scalar_knob():
    plan = FaultPlan(stragglers=(StragglerFault(gpu=2, factor=2.0, at=0.0),))
    knob = Trainer(CONFIG, sim=FAST, gpu_speed_factors={2: 2.0}).run()
    fault = Trainer(CONFIG, sim=FAST, faults=plan).run()
    assert fault.epoch_time == pytest.approx(knob.epoch_time, rel=1e-9)
    assert len(fault.faults.segments) == 1


def test_mid_epoch_link_failure_pays_transition():
    topology = build_dgx1v()
    plan = FaultPlan.single_link(_nvlink(topology), at=2.0)
    base = Trainer(CONFIG, sim=FAST).run()
    result = Trainer(CONFIG, sim=FAST, faults=plan).run()
    summary = result.faults
    assert len(summary.segments) == 2
    costs = plan.costs
    assert summary.transition_cost == pytest.approx(
        costs.route_recompute + costs.ring_rebuild
    )
    assert result.epoch_time >= base.epoch_time


def test_gpu_isolation_falls_back_to_pcie():
    topology = build_dgx1v()
    plan = FaultPlan.isolate_gpu(topology, 0)
    base = Trainer(CONFIG, sim=FAST).run()
    result = Trainer(CONFIG, sim=FAST, faults=plan).run()
    seg = result.faults.segments[-1]
    assert seg.ring_uses_pcie
    assert base.faults is None
    assert result.epoch_time > base.epoch_time


def test_crash_fail_fast_raises():
    plan = FaultPlan(crashes=(CrashFault(gpu=1, at_iteration=10),),
                     policy=ResiliencePolicy.FAIL_FAST)
    with pytest.raises(WorkerCrashError, match="gpu1"):
        Trainer(CONFIG, sim=FAST, faults=plan).run()


def test_crash_shrink_finishes_on_survivors():
    plan = FaultPlan(crashes=(CrashFault(gpu=3, at_iteration=100),),
                     policy=ResiliencePolicy.SHRINK)
    result = Trainer(CONFIG, sim=FAST, faults=plan).run()
    summary = result.faults
    assert summary.crashed_gpu == 3
    assert summary.crash_iteration == 100
    assert summary.survivors == 3
    assert summary.segments[-1].gpus == 3
    costs = plan.costs
    assert summary.recovery_cost == pytest.approx(
        costs.shrink_drain + costs.ring_rebuild
    )
    assert summary.checkpoint_cost == 0.0


def test_crash_checkpoint_restart_replays_and_charges_checkpoints():
    plan = FaultPlan(crashes=(CrashFault(gpu=3, at_iteration=300),),
                     policy=ResiliencePolicy.CHECKPOINT_RESTART)
    result = Trainer(CONFIG, sim=FAST, faults=plan).run()
    summary = result.faults
    costs = plan.costs
    assert summary.replayed_iterations == 300 % costs.checkpoint_interval
    assert summary.recovery_cost == pytest.approx(
        costs.restart_overhead + costs.ring_rebuild
    )
    # the policy pays a periodic checkpoint write for the whole epoch
    from repro.faults import checkpoint_write_cost

    done = CONFIG.iterations_per_epoch + summary.replayed_iterations
    assert summary.checkpoint_cost == pytest.approx(
        checkpoint_write_cost(done, costs)
    )
    assert summary.checkpoint_cost > 0
    assert summary.survivors == 4                  # full width after restart


def test_faulted_result_serialization_round_trip():
    from repro.analysis.serialization import result_from_dict, result_to_dict

    plan = FaultPlan(
        link_faults=(LinkFault(_nvlink(build_dgx1v()), at=2.0),),
        crashes=(CrashFault(gpu=3, at_iteration=100),),
        policy=ResiliencePolicy.SHRINK,
    )
    result = Trainer(CONFIG, sim=FAST, faults=plan).run()
    back = result_from_dict(json.loads(json.dumps(result_to_dict(result))))
    assert back.epoch_time == result.epoch_time
    assert back.faults == result.faults


# ----------------------------------------------------------------------
# Determinism properties
# ----------------------------------------------------------------------
def test_random_plans_are_seed_deterministic():
    for seed in range(30):
        assert FaultPlan.random(seed) == FaultPlan.random(seed)
    assert any(not FaultPlan.random(s).empty for s in range(10))
    assert FaultPlan.random(1) != FaultPlan.random(2)


def test_fault_plans_fingerprint_into_the_cache():
    plan = FaultPlan.random(7)
    a = SweepPoint.make(CONFIG, overrides={"faults": plan})
    b = SweepPoint.make(CONFIG, overrides={"faults": FaultPlan.random(8)})
    key = point_fingerprint(a, FAST, CALIBRATION)
    assert key is not None
    assert key == point_fingerprint(a, FAST, CALIBRATION)
    assert key != point_fingerprint(b, FAST, CALIBRATION)


def test_identical_seeds_give_identical_epoch_times():
    # seed 7 mixes a mid-epoch link failure, a straggler, and a SHRINK crash
    a = Trainer(CONFIG, sim=FAST, faults=FaultPlan.random(7, num_gpus=4)).run()
    b = Trainer(CONFIG, sim=FAST, faults=FaultPlan.random(7, num_gpus=4)).run()
    assert not a.faults.segments == ()
    assert a.epoch_time == b.epoch_time
    assert a.faults == b.faults


def test_same_plan_identical_across_runs_and_job_counts():
    from repro.analysis.serialization import result_to_dict

    topology = build_dgx1v()
    points = [
        SweepPoint.make(CONFIG, overrides={"faults": FaultPlan(
            stragglers=(StragglerFault(gpu=1, factor=1.7, at=1.0),),
        )}),
        SweepPoint.make(CONFIG, overrides={"faults": FaultPlan.single_link(
            _nvlink(topology), bandwidth_scale=0.5, at=1.0,
        )}),
        SweepPoint.make(CONFIG, overrides={
            "faults": FaultPlan.random(7, num_gpus=4),
        }),
    ]
    spec = SweepSpec.explicit("det", points)
    serial_a = SweepRunner(sim=FAST).run(spec)
    serial_b = SweepRunner(sim=FAST).run(spec)
    pooled = SweepRunner(sim=FAST, jobs=2).run(spec)
    for a, b, c in zip(serial_a, serial_b, pooled):
        assert result_to_dict(a.result) == result_to_dict(b.result)
        assert result_to_dict(a.result) == result_to_dict(c.result)


# ----------------------------------------------------------------------
# Golden byte-identity: the paper's artifacts with faults disabled
# ----------------------------------------------------------------------
def test_paper_artifacts_byte_identical_without_faults(tmp_path):
    """The no-faults default must not perturb any calibrated artifact."""
    from repro.experiments import cli

    names = ("fig3", "fig4", "fig5", "table2", "table3", "table4")
    rc = cli.main([*names, "--fast", "--no-cache", "-o", str(tmp_path)])
    assert rc == 0
    for name in names:
        produced = (tmp_path / f"{name}.txt").read_bytes()
        golden = (GOLDEN_DIR / f"{name}.txt").read_bytes()
        assert produced == golden, f"{name} diverged from golden artifact"
