"""Tests for the repro.runner subsystem: specs, fingerprints, store, runner."""

import dataclasses
import json

import pytest

from repro.analysis.serialization import (
    SCHEMA_VERSION,
    async_result_from_dict,
    async_result_to_dict,
    result_to_dict,
)
from repro.core.config import (
    CommMethodName,
    ScalingMode,
    SimulationConfig,
    TrainingConfig,
)
from repro.core.constants import CALIBRATION
from repro.core.errors import OutOfMemoryError
from repro.obs.bus import EventBus
from repro.obs.events import SweepPointDone, SweepPointOom, SweepPointStart
from repro.runner import (
    CacheSchemaError,
    OomInfo,
    OomPolicy,
    ResultStore,
    SweepPoint,
    SweepRunner,
    SweepSpec,
    Unfingerprintable,
    canonical,
    point_fingerprint,
)
from repro.train import train_async

FAST = SimulationConfig(warmup_iterations=1, measure_iterations=2)

#: A configuration the memory model rejects (inception at batch 512).
OOM_CONFIG = TrainingConfig("inception-v3", 512, 1,
                            comm_method=CommMethodName.P2P)


def _point(network="lenet", batch=16, gpus=1, method=CommMethodName.P2P,
           **kwargs):
    return SweepPoint.make(
        TrainingConfig(network, batch, gpus, comm_method=method), **kwargs
    )


# ----------------------------------------------------------------------
# SweepSpec construction
# ----------------------------------------------------------------------
def test_grid_cross_product_and_order():
    spec = SweepSpec.grid(
        "g",
        networks=("lenet", "alexnet"),
        comm_methods=(CommMethodName.P2P, CommMethodName.NCCL),
        batch_sizes=(16, 32),
        gpu_counts=(1, 2),
    )
    assert len(spec) == 2 * 2 * 2 * 2
    # Canonical nesting: network > method > scaling > batch > gpus.
    cfgs = [p.config for p in spec]
    assert [c.network for c in cfgs[:8]] == ["lenet"] * 8
    assert (cfgs[0].batch_size, cfgs[0].num_gpus) == (16, 1)
    assert (cfgs[1].batch_size, cfgs[1].num_gpus) == (16, 2)
    assert (cfgs[2].batch_size, cfgs[2].num_gpus) == (32, 1)
    assert cfgs[0].comm_method == CommMethodName.P2P
    assert cfgs[4].comm_method == CommMethodName.NCCL


def test_grid_config_extra_and_tags():
    spec = SweepSpec.grid(
        "g", networks=("lenet",), batch_sizes=(16,), gpu_counts=(8,),
        config_extra={"cluster_nodes": 2}, tags={"study": "multinode"},
    )
    point = spec.points[0]
    assert point.config.cluster_nodes == 2
    assert point.tag_dict() == {"study": "multinode"}


def test_spec_addition_keeps_stricter_policy():
    raising = SweepSpec.explicit("a", [_point()], oom_policy=OomPolicy.RAISE)
    skipping = SweepSpec.explicit("b", [_point(batch=32)],
                                  oom_policy=OomPolicy.SKIP)
    combined = skipping + raising
    assert len(combined) == 2
    assert combined.oom_policy is OomPolicy.RAISE


def test_point_rejects_unknown_mode():
    with pytest.raises(ValueError):
        SweepPoint(config=OOM_CONFIG, mode="turbo")


# ----------------------------------------------------------------------
# Fingerprinting
# ----------------------------------------------------------------------
def test_fingerprint_is_stable_and_sensitive():
    key = point_fingerprint(_point(), FAST, CALIBRATION)
    assert key == point_fingerprint(_point(), FAST, CALIBRATION)
    assert key != point_fingerprint(_point(batch=32), FAST, CALIBRATION)
    assert key != point_fingerprint(_point(), SimulationConfig(), CALIBRATION)


def test_fingerprint_changes_with_constants():
    tweaked = dataclasses.replace(
        CALIBRATION, kernel_launch_overhead=CALIBRATION.kernel_launch_overhead * 2
    )
    assert point_fingerprint(_point(), FAST, CALIBRATION) != point_fingerprint(
        _point(), FAST, tweaked
    )


def test_fingerprint_covers_protocol_constants():
    """The NCCL protocol constants invalidate cached sweep results."""
    tweaked = dataclasses.replace(
        CALIBRATION, nccl_ll_hop_latency=CALIBRATION.nccl_ll_hop_latency * 2
    )
    assert point_fingerprint(_point(), FAST, CALIBRATION) != point_fingerprint(
        _point(), FAST, tweaked
    )


def test_fingerprint_covers_protocol_config_knobs():
    """Points differing only in algorithm/protocol cache separately."""
    compat = _point(method=CommMethodName.NCCL)
    tuned = SweepPoint.make(
        TrainingConfig("lenet", 16, 1, comm_method=CommMethodName.NCCL,
                       nccl_algorithm="auto", nccl_protocol="auto")
    )
    assert point_fingerprint(compat, FAST, CALIBRATION) != point_fingerprint(
        tuned, FAST, CALIBRATION
    )


def test_lambda_override_is_uncacheable():
    point = _point(overrides={"topology_builder": lambda: None})
    assert point_fingerprint(point, FAST, CALIBRATION) is None


def test_canonical_rejects_arbitrary_objects():
    with pytest.raises(Unfingerprintable):
        canonical(object())


def test_canonical_handles_partials_and_enums():
    import functools

    from repro.topology import build_dgx1v

    form = canonical(functools.partial(build_dgx1v, nvlink_bandwidth_scale=2.0))
    assert form["kwargs"] == {"nvlink_bandwidth_scale": 2.0}
    assert canonical(CommMethodName.NCCL) == "nccl"


# ----------------------------------------------------------------------
# ResultStore
# ----------------------------------------------------------------------
def test_store_round_trip(tmp_path):
    runner = SweepRunner(sim=FAST)
    result = runner.get("lenet", 16, 1, CommMethodName.P2P)
    store = ResultStore(tmp_path)
    store.store("k1", result)
    loaded = store.load("k1")
    assert result_to_dict(loaded) == result_to_dict(result)
    assert len(store) == 1


def test_store_oom_round_trip(tmp_path):
    store = ResultStore(tmp_path)
    oom = OomInfo(device="gpu0", requested=123, free=45, message="boom")
    store.store("k1", oom)
    assert store.load("k1") == oom


def test_store_corrupt_file_is_a_miss(tmp_path):
    store = ResultStore(tmp_path)
    store.path_for("bad").parent.mkdir(parents=True, exist_ok=True)
    store.path_for("bad").write_text("{not json")
    assert store.load("bad") is None


def test_store_schema_mismatch_is_loud(tmp_path):
    store = ResultStore(tmp_path)
    store.root.mkdir(parents=True, exist_ok=True)
    store.path_for("old").write_text(
        json.dumps({"schema": SCHEMA_VERSION - 1, "kind": "training",
                    "result": {}})
    )
    with pytest.raises(CacheSchemaError):
        store.load("old")


# ----------------------------------------------------------------------
# SweepRunner execution
# ----------------------------------------------------------------------
def test_runner_memoizes_across_sweeps():
    runner = SweepRunner(sim=FAST)
    spec = SweepSpec.explicit("s", [_point(), _point(batch=32)])
    runner.run(spec)
    assert runner.stats.executed == 2
    runner.run(spec)
    assert runner.stats.executed == 2
    assert runner.stats.memory_hits == 2


def test_runner_disk_cache_hit(tmp_path):
    spec = SweepSpec.explicit("s", [_point(), _point(batch=32)])
    first = SweepRunner(sim=FAST, store=ResultStore(tmp_path))
    r1 = first.run(spec)
    assert first.stats.executed == 2

    second = SweepRunner(sim=FAST, store=ResultStore(tmp_path))
    r2 = second.run(spec)
    assert second.stats.executed == 0
    assert second.stats.disk_hits == 2
    for a, b in zip(r1, r2):
        assert result_to_dict(a.result) == result_to_dict(b.result)


def test_runner_cache_invalidated_by_constant_change(tmp_path):
    spec = SweepSpec.explicit("s", [_point()])
    SweepRunner(sim=FAST, store=ResultStore(tmp_path)).run(spec)

    tweaked = dataclasses.replace(
        CALIBRATION, kernel_launch_overhead=CALIBRATION.kernel_launch_overhead * 2
    )
    recal = SweepRunner(sim=FAST, constants=tweaked,
                        store=ResultStore(tmp_path))
    recal.run(spec)
    assert recal.stats.executed == 1       # stale entry never addressed
    assert recal.stats.disk_hits == 0


def test_parallel_results_identical_to_serial():
    spec = SweepSpec.grid(
        "par", networks=("lenet",), batch_sizes=(16, 32), gpu_counts=(1, 2),
        comm_methods=(CommMethodName.P2P,),
    )
    serial = SweepRunner(sim=FAST).run(spec)
    parallel = SweepRunner(sim=FAST, jobs=2).run(spec)
    assert len(serial) == len(parallel) == 4
    for a, b in zip(serial, parallel):
        assert a.point == b.point
        assert result_to_dict(a.result) == result_to_dict(b.result)


def test_parallel_async_points():
    spec = SweepSpec.explicit(
        "amix", [SweepPoint(config=_point(gpus=2).config, mode="async")]
    )
    serial = SweepRunner(sim=FAST).run(spec).outcomes[0].result
    parallel = SweepRunner(sim=FAST, jobs=2)
    # jobs>1 with one pending point falls back to serial; force two points.
    two = spec + SweepSpec.explicit(
        "amix2", [SweepPoint(config=_point(gpus=4).config, mode="async")]
    )
    results = parallel.run(two)
    assert async_result_to_dict(results.outcomes[0].result) == \
        async_result_to_dict(serial)
    direct = train_async(_point(gpus=2).config, sim=FAST)
    assert async_result_to_dict(results.outcomes[0].result) == \
        async_result_to_dict(direct)


def test_oom_policy_raise():
    spec = SweepSpec.explicit("oom", [SweepPoint(config=OOM_CONFIG)])
    with pytest.raises(OutOfMemoryError):
        SweepRunner(sim=FAST).run(spec)


def test_oom_policy_skip_and_record():
    points = [_point(), SweepPoint(config=OOM_CONFIG)]
    skip = SweepRunner(sim=FAST).run(
        SweepSpec.explicit("oom", points, oom_policy=OomPolicy.SKIP)
    )
    assert len(skip) == 1 and skip.outcomes[0].ok

    record = SweepRunner(sim=FAST).run(
        SweepSpec.explicit("oom", points, oom_policy=OomPolicy.RECORD)
    )
    assert len(record) == 2
    assert record.outcomes[1].oom is not None
    assert record.outcomes[1].result is None
    with pytest.raises(OutOfMemoryError):
        record.result(network="inception-v3")
    assert record.try_result(network="inception-v3") is None


def test_results_lookup_by_tag_mode_and_config():
    runner = SweepRunner(sim=FAST)
    spec = SweepSpec.explicit("look", [
        _point(tags={"role": "base"}),
        _point(batch=32, tags={"role": "big"}),
    ])
    results = runner.run(spec)
    assert results.outcome(role="big").point.config.batch_size == 32
    assert results.outcome(batch_size=16).point.tag_dict()["role"] == "base"
    assert results.outcome(mode="sync", role="base").ok
    with pytest.raises(KeyError):
        results.outcome(role="missing")
    with pytest.raises(KeyError):
        results.outcome(mode="sync")       # ambiguous


def test_runner_publishes_progress_events():
    bus = EventBus()
    seen = []
    bus.subscribe(SweepPointStart, seen.append)
    bus.subscribe(SweepPointDone, seen.append)
    bus.subscribe(SweepPointOom, seen.append)
    runner = SweepRunner(sim=FAST, bus=bus)
    runner.run(SweepSpec.explicit("evt", [
        _point(), SweepPoint(config=OOM_CONFIG),
    ], oom_policy=OomPolicy.RECORD))
    starts = [e for e in seen if isinstance(e, SweepPointStart)]
    dones = [e for e in seen if isinstance(e, SweepPointDone)]
    ooms = [e for e in seen if isinstance(e, SweepPointOom)]
    assert len(starts) == 2 and len(dones) == 1 and len(ooms) == 1
    assert starts[0].total == 2 and dones[0].source == "executed"


def test_runcache_compat_interface():
    runner = SweepRunner(sim=FAST)
    result = runner.get("lenet", 16, 2, CommMethodName.NCCL)
    assert result.config.num_gpus == 2
    assert len(runner) == 1
    assert runner.try_get("inception-v3", 512, 1, CommMethodName.P2P) is None
    # weak-scaling variant is a distinct memo entry
    runner.get("lenet", 16, 2, CommMethodName.NCCL, ScalingMode.WEAK)
    assert len(runner) == 3  # incl. the OOM record


def test_uncacheable_points_still_execute(tmp_path):
    from repro.analysis.crossover import SYNTHETIC_INPUT, synthetic_conv_network

    network = synthetic_conv_network(2)
    point = SweepPoint.make(
        TrainingConfig(network.name, 16, 2, comm_method=CommMethodName.P2P,
                       custom_network=True),
        overrides={"network": network, "input_shape": SYNTHETIC_INPUT,
                   "check_memory": False},
    )
    runner = SweepRunner(sim=FAST, store=ResultStore(tmp_path))
    spec = SweepSpec.explicit("synth", [point])
    runner.run(spec)
    runner.run(spec)
    assert runner.stats.executed == 2      # never cached, by design
    assert len(ResultStore(tmp_path)) == 0


# ----------------------------------------------------------------------
# Serialization round-trips (schema v2)
# ----------------------------------------------------------------------
def test_async_serialization_round_trip():
    result = train_async(
        TrainingConfig("lenet", 16, 4, comm_method=CommMethodName.P2P),
        sim=FAST,
    )
    data = json.loads(json.dumps(async_result_to_dict(result)))
    back = async_result_from_dict(data)
    assert back.config == result.config
    assert back.staleness_samples == result.staleness_samples
    assert back.effective_epoch_time() == pytest.approx(
        result.effective_epoch_time()
    )


def test_result_round_trip_preserves_extended_config_fields():
    runner = SweepRunner(sim=FAST)
    config = TrainingConfig("lenet", 16, 8, comm_method=CommMethodName.NCCL,
                            cluster_nodes=2)
    result = runner.run_point(SweepPoint(config=config))
    data = json.loads(json.dumps(result_to_dict(result)))
    from repro.analysis.serialization import result_from_dict

    back = result_from_dict(data)
    assert back.config == config
    assert back.config.cluster_nodes == 2
    assert back.epoch_time == result.epoch_time


# ----------------------------------------------------------------------
# Invariant verification (schema v7: cluster-tier fault fields)
# ----------------------------------------------------------------------
def test_store_rejects_stale_schema_entries(tmp_path):
    """Entries written before the schema gained the ``violations`` field
    (schema 3), the ``strategy``/``async_stats`` fields (schema 4), the
    cluster-tier config fields (schema 5) or the cluster-tier fault
    fields (schema 6) must be refused loudly, not deserialized without
    them."""
    assert SCHEMA_VERSION == 7
    store = ResultStore(tmp_path)
    store.root.mkdir(parents=True, exist_ok=True)
    for stale in (3, 4, 5, 6):
        key = f"v{stale}"
        store.path_for(key).write_text(json.dumps({
            "schema": stale, "kind": "training",
            "result": {"schema": stale, "config": {},
                       "iteration_time": 0.1},
        }))
        with pytest.raises(CacheSchemaError):
            store.load(key)


def _violation():
    from repro.checks.engine import Violation

    return Violation("capacity.link-bandwidth", "fabric.dma",
                     "1000 bytes crossed too fast", 0.25)


def test_violations_serialization_round_trip():
    from repro.analysis.serialization import result_from_dict

    runner = SweepRunner(sim=FAST)
    result = runner.get("lenet", 16, 1, CommMethodName.P2P)
    tagged = dataclasses.replace(result, violations=(_violation(),))
    data = json.loads(json.dumps(result_to_dict(tagged)))
    assert data["violations"] == [{
        "invariant": "capacity.link-bandwidth", "checkpoint": "fabric.dma",
        "message": "1000 bytes crossed too fast", "at": 0.25,
    }]
    assert result_from_dict(data).violations == (_violation(),)


def test_store_replays_violation_records(tmp_path):
    runner = SweepRunner(sim=FAST)
    result = runner.get("lenet", 16, 1, CommMethodName.P2P)
    store = ResultStore(tmp_path)
    store.store("k1", dataclasses.replace(result, violations=(_violation(),)))
    assert store.load("k1").violations == (_violation(),)


def test_tuning_and_custom_network_config_fields_round_trip():
    from repro.analysis.serialization import _config_from_dict, _config_to_dict

    config = TrainingConfig("lenet", 16, 2, comm_method=CommMethodName.NCCL,
                            nccl_algorithm="ring", nccl_protocol="simple")
    assert _config_from_dict(_config_to_dict(config)) == config


def test_runner_invariants_validated_and_collected():
    with pytest.raises(Exception):
        SweepRunner(sim=FAST, invariants="loud")
    runner = SweepRunner(sim=FAST, invariants="warn")
    runner.run(SweepSpec(name="w", points=(_point(gpus=2),)))
    assert runner.check_stats
    assert all(v == 0 for _, v in runner.check_stats.values())
    off = SweepRunner(sim=FAST)
    off.run(SweepSpec(name="o", points=(_point(gpus=2),)))
    assert off.check_stats == {}


def test_invariants_mode_not_part_of_fingerprint(tmp_path):
    """Checks observe a run without changing it, so strict and off share
    cache entries."""
    spec = SweepSpec(name="s", points=(_point(),))
    SweepRunner(sim=FAST, store=ResultStore(tmp_path),
                invariants="strict").run(spec)
    second = SweepRunner(sim=FAST, store=ResultStore(tmp_path))
    second.run(spec)
    assert second.stats.disk_hits == 1
    assert second.stats.executed == 0


def test_parallel_runner_collects_check_stats():
    runner = SweepRunner(sim=FAST, jobs=2, invariants="warn")
    runner.run(SweepSpec(name="p", points=(_point(gpus=2),
                                           _point(gpus=4))))
    assert runner.check_stats
    assert all(v == 0 for _, v in runner.check_stats.values())


# ----------------------------------------------------------------------
# Graceful interruption (SIGINT/SIGTERM -> SweepInterrupted)
# ----------------------------------------------------------------------
def test_interrupt_flushes_completed_points(tmp_path, monkeypatch, capsys):
    from repro.core.errors import SweepInterrupted
    from repro.runner import runner as runner_module

    real = runner_module._execute_point
    calls = {"n": 0}

    def interrupt_second(point, sim, constants, kwargs, invariants="off"):
        calls["n"] += 1
        if calls["n"] >= 2:
            raise KeyboardInterrupt
        return real(point, sim, constants, kwargs, invariants)

    monkeypatch.setattr(runner_module, "_execute_point", interrupt_second)
    first = _point()
    spec = SweepSpec(name="s", points=(first, _point(gpus=2)))
    runner = SweepRunner(sim=FAST, store=ResultStore(tmp_path))
    with pytest.raises(SweepInterrupted) as exc:
        runner.run(spec)
    assert exc.value.completed == 1
    assert exc.value.total == 2
    assert "interrupted" in capsys.readouterr().err
    # The completed point reached the disk store before the interrupt.
    fresh = SweepRunner(sim=FAST, store=ResultStore(tmp_path))
    fresh.run(SweepSpec(name="s2", points=(first,)))
    assert fresh.stats.disk_hits == 1
    assert fresh.stats.executed == 0
