"""Tests for the calibration constants."""

import dataclasses

import pytest

from repro.core.constants import CALIBRATION, CalibrationConstants


def test_frozen():
    with pytest.raises(dataclasses.FrozenInstanceError):
        CALIBRATION.kernel_launch_overhead = 0.0  # type: ignore[misc]


def test_scaled_returns_modified_copy():
    faster = CALIBRATION.scaled(kernel_launch_overhead=1e-6)
    assert faster.kernel_launch_overhead == 1e-6
    assert faster.stream_sync_overhead == CALIBRATION.stream_sync_overhead
    assert CALIBRATION.kernel_launch_overhead != 1e-6  # original untouched


def test_all_time_constants_positive():
    for field in dataclasses.fields(CalibrationConstants):
        value = getattr(CALIBRATION, field.name)
        if isinstance(value, (int, float)):
            assert value > 0, field.name


def test_efficiency_fractions_in_unit_interval():
    for name in ("nvlink_efficiency", "pcie_efficiency",
                 "nccl_bandwidth_efficiency", "max_compute_efficiency",
                 "tensor_core_fraction"):
        value = getattr(CALIBRATION, name)
        assert 0 < value <= 1, name


def test_latency_ordering_is_physical():
    """NVLink < QPI < PCIe per-hop latency."""
    assert CALIBRATION.nvlink_latency < CALIBRATION.qpi_latency
    assert CALIBRATION.qpi_latency < CALIBRATION.pcie_latency


def test_scaled_is_usable_in_trainer():
    from repro import SimulationConfig, TrainingConfig, train

    slow_launch = CALIBRATION.scaled(kernel_launch_overhead=50e-6)
    base = train(TrainingConfig("lenet", 16, 1),
                 sim=SimulationConfig(1, 2))
    slow = train(TrainingConfig("lenet", 16, 1),
                 sim=SimulationConfig(1, 2), constants=slow_launch)
    assert slow.epoch_time > base.epoch_time
