"""End-to-end observability: a profiled 4-GPU NCCL run through the stack.

This is the issue's acceptance scenario: run training with an
:class:`~repro.obs.session.ObsSession` attached, export all three formats,
and check the Prometheus output carries non-zero per-NVLink traffic and
contention-wait counters.
"""

import io
import json

import pytest

from repro import CommMethodName, SimulationConfig, TrainingConfig
from repro.experiments.cli import main as cli_main
from repro.obs import ObsSession, render_prometheus, write_profile_csv
from repro.profile import export_chrome_trace
from repro.train import Trainer

SIM = SimulationConfig(warmup_iterations=1, measure_iterations=2)


@pytest.fixture(scope="module")
def nccl_run():
    obs = ObsSession()
    config = TrainingConfig("alexnet", 16, 4, comm_method=CommMethodName.NCCL)
    result = Trainer(config, sim=SIM, keep_profiler=True, obs=obs).run()
    return obs, result


def _nvlink_children(registry, name):
    return [
        (labels, registry.counter_value(name, **labels))
        for labels in registry.label_sets(name)
        if labels["link_type"] == "nvlink"
    ]


def test_nvlink_pairs_carry_bytes(nccl_run):
    obs, _ = nccl_run
    pairs = _nvlink_children(obs.registry, "link_bytes_total")
    assert pairs, "no NVLink pair ever carried traffic"
    assert any(value > 0 for _, value in pairs)


def test_nvlink_contention_wait_counters_exported(nccl_run):
    obs, _ = nccl_run
    pairs = _nvlink_children(obs.registry, "link_wait_time_total")
    assert pairs, "wait counters missing for NVLink pairs"
    # Collectives queue on the NCCL stream behind each other, so the ring
    # links accumulate real (non-zero) contention wait.
    assert any(value > 0 for _, value in pairs)


def test_prometheus_export_of_real_run(nccl_run):
    obs, _ = nccl_run
    text = render_prometheus(obs.registry)
    assert 'link_bytes_total{src="gpu' in text
    assert "link_wait_time_total" in text
    assert "kernel_time_total" in text
    assert "ring_step_seconds_bucket" in text
    assert "sim_event_queue_depth" in text


def test_queue_depth_was_sampled(nccl_run):
    obs, _ = nccl_run
    assert obs.registry.get("sim_event_queue_depth_max").value > 0


def test_ring_steps_recorded_per_collective(nccl_run):
    obs, _ = nccl_run
    reduce_steps = obs.registry.counter_value("ring_steps_total",
                                              collective="reduce")
    bcast_steps = obs.registry.counter_value("ring_steps_total",
                                             collective="broadcast")
    assert reduce_steps > 0 and bcast_steps > 0
    # 4-GPU ring: N-1 = 3 step windows per collective per array.
    assert reduce_steps % 3 == 0


def test_jsonl_recorder_captured_run_events(nccl_run):
    obs, result = nccl_run
    types = {type(e).__name__ for e in obs.recorder.events}
    assert {"KernelEvent", "TransferEvent", "ApiEvent", "SpanEvent",
            "RingStepEvent", "LinkBusyEvent", "QueueDepthEvent"} <= types
    buf = io.StringIO()
    lines = obs.recorder.write(buf)
    assert lines == len(obs.recorder.events)
    json.loads(buf.getvalue().splitlines()[0])


def test_all_three_formats_export_from_one_run(nccl_run):
    obs, result = nccl_run
    prom = render_prometheus(obs.registry)
    jsonl = io.StringIO()
    obs.recorder.write(jsonl)
    chrome = io.StringIO()
    export_chrome_trace(result.profiler, chrome)
    csv_buf = io.StringIO()
    write_profile_csv(result.profiler, csv_buf)
    assert prom and jsonl.getvalue() and csv_buf.getvalue()
    trace = json.loads(chrome.getvalue())
    assert trace["displayTimeUnit"] == "ms"
    assert any(e["ph"] == "M" for e in trace["traceEvents"])


def test_warmup_iterations_stay_out_of_metrics():
    """The metrics window matches the profiler's measurement window."""
    obs = ObsSession()
    config = TrainingConfig("lenet", 16, 2, comm_method=CommMethodName.NCCL)
    result = Trainer(config, sim=SIM, keep_profiler=True, obs=obs).run()
    measured_kernels = sum(
        obs.registry.counter_value("kernels_total", gpu=gpu, stage=stage)
        for gpu in (0, 1) for stage in ("fp", "bp", "wu")
    )
    assert measured_kernels == len(result.profiler.kernels)


def test_fabric_wait_time_accounting():
    """P2P training contends on real fabric links; waits are accounted."""
    obs = ObsSession()
    config = TrainingConfig("alexnet", 16, 4, comm_method=CommMethodName.P2P)
    Trainer(config, sim=SIM, keep_profiler=True, obs=obs).run()
    waits = [
        obs.registry.counter_value("link_wait_time_total", **labels)
        for labels in obs.registry.label_sets("link_wait_time_total")
    ]
    assert waits and any(w > 0 for w in waits)


def test_results_unchanged_with_observability_attached():
    """Attaching an ObsSession must not perturb simulated timing."""
    config = TrainingConfig("lenet", 16, 2, comm_method=CommMethodName.NCCL)
    plain = Trainer(config, sim=SIM).run()
    observed = Trainer(config, sim=SIM, obs=ObsSession()).run()
    assert observed.iteration_time == pytest.approx(plain.iteration_time)
    assert observed.epoch_time == pytest.approx(plain.epoch_time)


# ----------------------------------------------------------------------
# CLI subcommand
# ----------------------------------------------------------------------
def test_cli_obs_subcommand_exports_all_formats(tmp_path, capsys):
    rc = cli_main([
        "obs", "--network", "lenet", "--batch", "16", "--gpus", "2",
        "--comm", "nccl", "--formats", "all", "-o", str(tmp_path),
    ])
    assert rc == 0
    out = capsys.readouterr().out
    assert "==PROF==" in out   # summary format prints the nvprof report
    stem = "lenet_b16_g2_nccl"
    prom = (tmp_path / f"{stem}.prom").read_text()
    assert "link_bytes_total" in prom
    jsonl = (tmp_path / f"{stem}.jsonl").read_text()
    assert json.loads(jsonl.splitlines()[0])["type"]
    trace = json.loads((tmp_path / f"{stem}.trace.json").read_text())
    assert trace["displayTimeUnit"] == "ms"
    assert (tmp_path / f"{stem}.csv").read_text().startswith("record,")


def test_cli_trace_alias_and_summary_flag(tmp_path, capsys):
    rc = cli_main([
        "trace", "--network", "lenet", "--gpus", "1", "--formats",
        "prometheus", "--print-gpu-summary", "-o", str(tmp_path),
    ])
    assert rc == 0
    out = capsys.readouterr().out
    assert "GPU activities:" in out


def test_cli_obs_rejects_unknown_format(tmp_path):
    with pytest.raises(SystemExit):
        cli_main(["obs", "--formats", "xml", "-o", str(tmp_path)])
