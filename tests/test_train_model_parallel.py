"""Tests for the model-parallel estimator."""

import pytest

from repro import CommMethodName, SimulationConfig, TrainingConfig, train
from repro.core.errors import ConfigurationError
from repro.dnn import build_network, compile_network, network_input_shape
from repro.train import train_model_parallel
from repro.train.model_parallel import ModelParallelEstimator, partition_network

FAST = SimulationConfig(warmup_iterations=1, measure_iterations=2)


@pytest.fixture(scope="module")
def alexnet_parts():
    net = build_network("alexnet")
    stats = compile_network(net, network_input_shape("alexnet"))
    return net, stats


# ----------------------------------------------------------------------
# Partitioning
# ----------------------------------------------------------------------
def test_partition_covers_all_layers(alexnet_parts):
    net, stats = alexnet_parts
    plan = partition_network(net, stats, 4)
    assert len(plan.assignment) == len(stats.layers)
    assert set(plan.assignment) == {0, 1, 2, 3}
    # contiguous and monotone
    assert list(plan.assignment) == sorted(plan.assignment)


def test_partition_preserves_totals(alexnet_parts):
    net, stats = alexnet_parts
    plan = partition_network(net, stats, 4)
    assert sum(plan.segment_fwd_flops) == pytest.approx(
        stats.forward_flops_per_sample
    )
    assert sum(plan.segment_params) == stats.total_params


def test_partition_roughly_balanced(alexnet_parts):
    net, stats = alexnet_parts
    plan = partition_network(net, stats, 2)
    assert plan.balance < 1.6


def test_partition_single_gpu_trivial(alexnet_parts):
    net, stats = alexnet_parts
    plan = partition_network(net, stats, 1)
    assert set(plan.assignment) == {0}
    assert plan.boundary_bytes == ()


def test_partition_branchy_network_counts_all_crossings():
    net = build_network("resnet")
    stats = compile_network(net, network_input_shape("resnet"))
    plan = partition_network(net, stats, 4)
    # residual shortcuts crossing a boundary add traffic: every boundary
    # moves at least one tensor
    assert all(b > 0 for b in plan.boundary_bytes)


def test_partition_validation(alexnet_parts):
    net, stats = alexnet_parts
    with pytest.raises(ConfigurationError):
        partition_network(net, stats, 0)
    with pytest.raises(ConfigurationError):
        partition_network(net, stats, len(stats.layers) + 1)


# ----------------------------------------------------------------------
# Estimation
# ----------------------------------------------------------------------
def test_result_basic_invariants():
    r = train_model_parallel(TrainingConfig("alexnet", 16, 2))
    assert r.iteration_time > 0
    assert r.epoch_time > 0
    assert r.images_per_second > 0
    assert r.communication_bytes_per_iteration > 0
    assert "model-parallel" in r.describe()


def test_mp_trade_off_matches_paper():
    """MP is competitive for FC-heavy AlexNet, terrible for conv-heavy
    ResNet -- the paper's data-vs-model-parallelism argument."""
    ratios = {}
    for net in ("alexnet", "resnet"):
        dp = train(TrainingConfig(net, 16, 2, comm_method=CommMethodName.P2P),
                   sim=FAST)
        mp = train_model_parallel(TrainingConfig(net, 16, 2))
        ratios[net] = mp.epoch_time / dp.epoch_time
    assert ratios["alexnet"] < 1.3          # near parity
    assert ratios["resnet"] > 1.5           # clearly worse
    assert ratios["alexnet"] < ratios["resnet"]


def test_mp_has_no_gradient_communication():
    """Boundary traffic only: far less than DP's 2x model size."""
    r = train_model_parallel(TrainingConfig("alexnet", 16, 2))
    stats = compile_network(build_network("alexnet"),
                            network_input_shape("alexnet"))
    assert r.communication_bytes_per_iteration < stats.model_bytes


def test_pipelining_helps_when_stages_balanced():
    plain = train_model_parallel(TrainingConfig("resnet", 64, 4))
    piped = train_model_parallel(TrainingConfig("resnet", 64, 4),
                                 pipeline_microbatches=4)
    assert piped.epoch_time < plain.epoch_time


def test_microbatch_validation():
    with pytest.raises(ConfigurationError):
        train_model_parallel(TrainingConfig("alexnet", 16, 2),
                             pipeline_microbatches=0)
    with pytest.raises(ConfigurationError):
        train_model_parallel(TrainingConfig("alexnet", 16, 2),
                             pipeline_microbatches=3)


def test_custom_network_needs_shape():
    net = build_network("lenet")
    with pytest.raises(ConfigurationError):
        ModelParallelEstimator(TrainingConfig("lenet", 16, 2), network=net)


def test_determinism():
    a = train_model_parallel(TrainingConfig("googlenet", 16, 4))
    b = train_model_parallel(TrainingConfig("googlenet", 16, 4))
    assert a.epoch_time == b.epoch_time
