"""Focused coverage for profile.summary: multi-iteration aggregation,
straggler semantics, edge cases the smoke tests in test_profile.py skip."""

import pytest

from repro.gpu.kernel import KernelSpec
from repro.profile import Profiler, summarize_apis, summarize_stages
from repro.profile.summary import gpu_busy_fractions


def _kernel(name="k", stage="fp"):
    return KernelSpec(name=name, layer="l", stage=stage, duration=1.0,
                      flops=0.0, bytes_moved=0)


def _two_iteration_profiler():
    p = Profiler()
    # Iteration 0: fp straggler on GPU 1 (1.5), bp straggler on GPU 0 (2.0).
    p.record_span("fp", 0, 0, 0.0, 1.0)
    p.record_span("fp", 1, 0, 0.0, 1.5)
    p.record_span("bp", 0, 0, 1.5, 3.5)
    p.record_span("bp", 1, 0, 1.5, 3.0)
    p.record_span("wu", -1, 0, 3.5, 4.0)
    p.record_span("iteration", -1, 0, 0.0, 4.0)
    # Iteration 1: uniformly slower.
    p.record_span("fp", 0, 1, 4.0, 6.5)
    p.record_span("fp", 1, 1, 4.0, 6.0)
    p.record_span("bp", 0, 1, 6.5, 9.5)
    p.record_span("bp", 1, 1, 6.5, 9.0)
    p.record_span("wu", -1, 1, 9.5, 10.5)
    p.record_span("iteration", -1, 1, 4.0, 10.5)
    return p


def test_stage_means_average_per_iteration_stragglers():
    stages = summarize_stages(_two_iteration_profiler())
    # fp: mean(max(1.0, 1.5), max(2.5, 2.0)) = mean(1.5, 2.5)
    assert stages.fp == pytest.approx(2.0)
    # bp: mean(max(2.0, 1.5), max(3.0, 2.5)) = mean(2.0, 3.0)
    assert stages.bp == pytest.approx(2.5)
    assert stages.wu == pytest.approx(0.75)
    assert stages.iteration == pytest.approx(5.25)
    assert stages.fp_bp == pytest.approx(4.5)
    assert stages.wu_fraction == pytest.approx(0.75 / 5.25)


def test_stage_missing_in_some_iterations_averages_over_present_ones():
    p = Profiler()
    p.record_span("fp", 0, 0, 0.0, 1.0)
    p.record_span("iteration", -1, 0, 0.0, 1.0)
    p.record_span("fp", 0, 1, 1.0, 4.0)
    p.record_span("iteration", -1, 1, 1.0, 4.0)
    p.record_span("wu", -1, 1, 3.0, 4.0)   # wu only in iteration 1
    stages = summarize_stages(p)
    assert stages.fp == pytest.approx(2.0)
    assert stages.wu == pytest.approx(1.0)  # averaged over 1 value, not 2


def test_api_summary_merges_and_orders_by_total():
    p = Profiler()
    p.record_api("cudaLaunchKernel", 0, 0.0, 0.1)
    p.record_api("cudaLaunchKernel", 1, 0.0, 0.2)
    p.record_api("cudaMemcpyAsync", 0, 0.0, 0.05)
    p.record_api("cudaStreamSynchronize", 0, 0.0, 1.0)
    summary = summarize_apis(p)
    assert [name for name, _ in summary.totals] == [
        "cudaStreamSynchronize", "cudaLaunchKernel", "cudaMemcpyAsync",
    ]
    assert summary.time_of("cudaLaunchKernel") == pytest.approx(0.3)
    assert summary.total_time == pytest.approx(1.35)
    percents = [summary.percent_of(name) for name, _ in summary.totals]
    assert sum(percents) == pytest.approx(100.0)


def test_api_summary_empty_profiler():
    summary = summarize_apis(Profiler())
    assert summary.totals == ()
    assert summary.total_time == 0.0
    assert summary.percent_of("anything") == 0.0


def test_gpu_busy_fractions_window_from_spans():
    p = _two_iteration_profiler()
    p.record_kernel(0, _kernel(), 0.0, 2.1)
    p.record_kernel(1, _kernel(), 0.0, 4.2)
    busy = gpu_busy_fractions(p)
    # Window spans both iterations: 0.0 .. 10.5.
    assert busy[0] == pytest.approx(2.1 / 10.5)
    assert busy[1] == pytest.approx(4.2 / 10.5)
    assert list(busy) == [0, 1]   # sorted by GPU index


def test_gpu_busy_fractions_empty_window():
    p = Profiler()
    p.record_kernel(0, _kernel(), 0.0, 1.0)   # kernels but no spans
    assert gpu_busy_fractions(p) == {}
