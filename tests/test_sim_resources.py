"""Tests for Resource and Store, including property-based FIFO checks."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import SimulationError
from repro.sim import Environment, Resource
from repro.sim.resources import Store


def _user(env, resource, name, hold, log):
    req = resource.request()
    yield req
    log.append(("acq", name, env.now))
    try:
        yield env.timeout(hold)
    finally:
        resource.release(req)
        log.append(("rel", name, env.now))


def test_capacity_one_serializes():
    env = Environment()
    r = Resource(env)
    log = []
    for i in range(3):
        env.process(_user(env, r, f"u{i}", 1.0, log))
    env.run()
    acquires = [(n, t) for kind, n, t in log if kind == "acq"]
    assert acquires == [("u0", 0.0), ("u1", 1.0), ("u2", 2.0)]


def test_capacity_two_allows_two_concurrent():
    env = Environment()
    r = Resource(env, capacity=2)
    log = []
    for i in range(4):
        env.process(_user(env, r, f"u{i}", 1.0, log))
    env.run()
    acquires = [(n, t) for kind, n, t in log if kind == "acq"]
    assert acquires == [("u0", 0.0), ("u1", 0.0), ("u2", 1.0), ("u3", 1.0)]


def test_invalid_capacity_rejected():
    with pytest.raises(SimulationError):
        Resource(Environment(), capacity=0)


def test_release_of_unheld_request_is_error():
    env = Environment()
    r = Resource(env)
    held = r.request()
    r2 = Resource(env)
    foreign = r2.request()
    with pytest.raises(SimulationError):
        r.release(foreign)


def test_cancel_waiting_request():
    env = Environment()
    r = Resource(env)
    first = r.request()
    second = r.request()
    assert r.queue_length == 1
    r.cancel(second)
    assert r.queue_length == 0
    with pytest.raises(SimulationError):
        r.cancel(second)
    r.release(first)


def test_count_and_queue_length():
    env = Environment()
    r = Resource(env, capacity=2)
    reqs = [r.request() for _ in range(5)]
    assert r.count == 2
    assert r.queue_length == 3
    r.release(reqs[0])
    assert r.count == 2  # next waiter was promoted
    assert r.queue_length == 2


@settings(max_examples=50, deadline=None)
@given(
    holds=st.lists(st.floats(min_value=0.01, max_value=5.0), min_size=1, max_size=12),
    capacity=st.integers(min_value=1, max_value=4),
)
def test_fifo_grant_order_property(holds, capacity):
    """Requests are always granted in arrival order, whatever the holds."""
    env = Environment()
    r = Resource(env, capacity=capacity)
    log = []
    for i, hold in enumerate(holds):
        env.process(_user(env, r, i, hold, log))
    env.run()
    grant_order = [n for kind, n, _ in log if kind == "acq"]
    assert grant_order == sorted(grant_order)
    # all users eventually ran and released
    assert sum(1 for kind, *_ in log if kind == "rel") == len(holds)


@settings(max_examples=50, deadline=None)
@given(
    holds=st.lists(st.floats(min_value=0.25, max_value=0.25), min_size=2, max_size=10),
    capacity=st.integers(min_value=1, max_value=3),
)
def test_total_time_matches_capacity_property(holds, capacity):
    """With equal holds, makespan = ceil(n / capacity) * hold."""
    env = Environment()
    r = Resource(env, capacity=capacity)
    log = []
    for i, hold in enumerate(holds):
        env.process(_user(env, r, i, hold, log))
    env.run()
    rounds = -(-len(holds) // capacity)
    assert env.now == pytest.approx(rounds * 0.25)


# ----------------------------------------------------------------------
# Store
# ----------------------------------------------------------------------
def test_store_put_then_get():
    env = Environment()
    s = Store(env)
    s.put("x")
    got = s.get()
    assert got.triggered and got.value == "x"


def test_store_get_blocks_until_put():
    env = Environment()
    s = Store(env)
    results = []

    def consumer(env):
        item = yield s.get()
        results.append((env.now, item))

    def producer(env):
        yield env.timeout(2.0)
        s.put("late")

    env.process(consumer(env))
    env.process(producer(env))
    env.run()
    assert results == [(2.0, "late")]


def test_store_is_fifo():
    env = Environment()
    s = Store(env)
    for item in ("a", "b", "c"):
        s.put(item)
    assert [s.get().value for _ in range(3)] == ["a", "b", "c"]
    assert len(s) == 0


def test_store_len_counts_items():
    env = Environment()
    s = Store(env)
    s.put(1)
    s.put(2)
    assert len(s) == 2
