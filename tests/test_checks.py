"""repro.checks: registry, engine modes, and every shipped checker.

Each checker gets a clean payload (no violation) and at least one
corrupted payload (fires); a completeness test asserts that *every*
registered checker is covered by a corrupted-payload case, so adding a
checker without proving it can fire fails the suite.
"""

from __future__ import annotations

from dataclasses import dataclass

import pytest

from repro.checks import (
    CheckEngine,
    CheckMode,
    all_checkers,
    checkers_at,
    get_checker,
    invariant,
    merge_stats,
)
from repro.core.errors import ConfigurationError, InvariantViolationError
from repro.obs.bus import EventBus
from repro.obs.events import InvariantViolationEvent


@dataclass(frozen=True)
class Span:
    """Minimal stand-in for a profiler stage span."""

    name: str
    iteration: int
    start: float
    end: float
    gpu: int = 0


def fire(invariant_name: str, payload: dict) -> list:
    """Run one checker directly; normalized list of violation messages."""
    checker = get_checker(invariant_name)
    assert checker is not None, f"unknown checker {invariant_name}"
    out = checker.fn(payload)
    if out is None:
        return []
    return [out] if isinstance(out, str) else list(out)


def _stage_spans(wu_end: float = 1.8, window_end: float = 2.0,
                 fp_end: float = 1.2, wu_start: float = 1.5):
    return [
        Span("iteration", 0, 1.0, window_end),
        Span("fp", 0, 1.0, fp_end),
        Span("bp", 0, fp_end, 1.5),
        Span("wu", 0, wu_start, wu_end),
    ]


#: (clean payload, corrupted payload) per invariant.  The corrupted
#: payload must make exactly that checker fire.
CASES = {
    "temporal.event-monotone": (
        {"when": 1.0, "now": 0.5},
        {"when": 0.4, "now": 0.5},
    ),
    "capacity.link-bandwidth": (
        {"nbytes": 10**6, "wire_time": 2e-3, "latency": 1e-6,
         "bandwidth": 1e9, "granted": 0.0, "windows": []},
        {"nbytes": 10**6, "wire_time": 5e-4, "latency": 1e-6,
         "bandwidth": 1e9, "granted": 0.0, "windows": []},
    ),
    "temporal.link-serialization": (
        {"granted": 2.0, "windows": [("nvlink:gpu0->", 2.0)]},
        {"granted": 1.0, "windows": [("nvlink:gpu0->", 2.0)]},
    ),
    "capacity.link-busy": (
        {"busy_time": {"l": 1.5}, "bytes_moved": {}, "wait_time": {},
         "elapsed": 1.0},
        {"busy_time": {"l": 2.5}, "bytes_moved": {}, "wait_time": {},
         "elapsed": 1.0},
    ),
    "conservation.link-accounting": (
        {"busy_time": {"l": 0.1}, "bytes_moved": {"l": 10},
         "wait_time": {"l": 0.0}, "elapsed": 1.0},
        {"busy_time": {}, "bytes_moved": {"l": 10}, "wait_time": {},
         "elapsed": 1.0},
    ),
    "structural.ring-permutation": (
        {"order": [0, 2, 1], "participants": [0, 1, 2], "hops": [],
         "uses_pcie": False},
        {"order": [0, 1, 1], "participants": [0, 1, 2], "hops": [],
         "uses_pcie": False},
    ),
    "structural.ring-links": (
        {"order": [0, 1, 2], "participants": [0, 1, 2], "uses_pcie": False,
         "hops": [(0, 1, "a", "nvlink"), (1, 2, "b", "nvlink"),
                  (2, 0, "c", "nvlink")]},
        {"order": [0, 1, 2], "participants": [0, 1, 2], "uses_pcie": False,
         "hops": [(0, 2, "a", "nvlink"), (1, 2, "b", "nvlink"),
                  (2, 0, "c", "pcie")]},
    ),
    "structural.tree-spanning": (
        {"root": 0, "parent": ((1, 0), (2, 0), (3, 1)),
         "participants": [0, 1, 2, 3], "depth": 2},
        {"root": 0, "parent": ((1, 0), (2, 0), (3, 1)),
         "participants": [0, 1, 2, 3], "depth": 3},
    ),
    "structural.reduce-coverage": (
        {"num_gpus": 4, "stages": [[(1, 0), (3, 2)], [(2, 0)]]},
        {"num_gpus": 4, "stages": [[(1, 0)]]},
    ),
    "conservation.collective-wire": (
        {"kind": "allreduce", "nbytes": 100, "size": 4,
         "schedule_total": 600, "duration": 1.0, "bound_bandwidth": 1e9},
        {"kind": "allreduce", "nbytes": 100, "size": 4,
         "schedule_total": 599, "duration": 1.0, "bound_bandwidth": 1e9},
    ),
    "capacity.collective-bandwidth": (
        {"kind": "allreduce", "nbytes": 4000, "size": 4,
         "schedule_total": 24000, "duration": 2e-6, "bound_bandwidth": 1e9},
        {"kind": "allreduce", "nbytes": 4000, "size": 4,
         "schedule_total": 24000, "duration": 5e-7, "bound_bandwidth": 1e9},
    ),
    "conservation.hierarchical-wire": (
        # 800 B over 2 nodes x 8 GPUs: intra 2*7*800 = 11200 per phase,
        # inter 2*1*800 = 1600 -> 2*11200 + 1600 = 24000.
        {"kind": "allreduce", "nodes": 2, "gpus_per_node": 8, "nbytes": 800,
         "schedule_total": 24000, "wire_total": 24000},
        {"kind": "allreduce", "nodes": 2, "gpus_per_node": 8, "nbytes": 800,
         "schedule_total": 23999, "wire_total": 24000},
    ),
    "capacity.hierarchical-floor": (
        # floor = 2*(800//8)/1e9 + (200//2)/1e10 = 2.1e-7 s.
        {"kind": "allreduce", "nodes": 2, "gpus_per_node": 8, "nbytes": 800,
         "duration": 1e-6, "max_rail_bytes": 200,
         "intra_bound_bandwidth": 1e9, "rail_bound_bandwidth": 1e10},
        {"kind": "allreduce", "nodes": 2, "gpus_per_node": 8, "nbytes": 800,
         "duration": 1e-8, "max_rail_bytes": 200,
         "intra_bound_bandwidth": 1e9, "rail_bound_bandwidth": 1e10},
    ),
    "temporal.hierarchical-agreement": (
        {"kind": "allreduce", "mode": "event",
         "duration": 1.25e-6, "analytic": 1.25e-6},
        {"kind": "allreduce", "mode": "analytic",
         "duration": 1.35e-6, "analytic": 1.25e-6},
    ),
    "conservation.rail-rebalance": (
        # Rail 1 down: its 26 bytes re-rail as 9/9/8 onto rails 0/2/3.
        {"kind": "allreduce", "nodes": 2, "nbytes": 100,
         "rail_scales": (1.0, 0.0, 1.0, 1.0),
         "healthy_rail_bytes": (26, 26, 24, 24),
         "rail_assignment": (35, 0, 33, 32)},
        {"kind": "allreduce", "nodes": 2, "nbytes": 100,
         "rail_scales": (1.0, 0.0, 1.0, 1.0),
         "healthy_rail_bytes": (26, 26, 24, 24),
         "rail_assignment": (35, 26, 33, 32)},  # down rail still loaded
    ),
    "capacity.degraded-rail-floor": (
        # Slowest surviving rail: 4000 B at 0.25 x 1e10 -> (4000//2)/2.5e9
        # = 8e-7 s.
        {"kind": "allreduce", "nodes": 2, "nbytes": 10000,
         "rail_assignment": (4000, 0, 3000, 3000),
         "rail_scales": (0.25, 0.0, 1.0, 1.0),
         "rail_bound_bandwidth": 1e10, "duration": 1e-6},
        {"kind": "allreduce", "nodes": 2, "nbytes": 10000,
         "rail_assignment": (4000, 0, 3000, 3000),
         "rail_scales": (0.25, 0.0, 1.0, 1.0),
         "rail_bound_bandwidth": 1e10, "duration": 1e-7},
    ),
    "temporal.fallback-agreement": (
        {"requested": "auto", "resolved": "event", "analytic_ok": False,
         "faulted": True, "mean_iteration": 2e-3, "analytic_wu": 1e-3,
         "iterations": 4},
        {"requested": "auto", "resolved": "analytic", "analytic_ok": False,
         "faulted": True, "mean_iteration": 2e-3, "analytic_wu": 1e-3,
         "iterations": 4},
    ),
    "temporal.spans-nested": (
        {"spans": _stage_spans(), "host_overhead": 0.2, "busy": {},
         "elapsed": 1.0},
        {"spans": _stage_spans(fp_end=2.5), "host_overhead": 0.2,
         "busy": {}, "elapsed": 1.0},
    ),
    "temporal.iterations-monotone": (
        {"spans": [Span("iteration", 0, 0.0, 1.0),
                   Span("iteration", 1, 1.0, 2.0)],
         "host_overhead": 0.0, "busy": {}, "elapsed": 2.0},
        {"spans": [Span("iteration", 0, 0.0, 1.0),
                   Span("iteration", 1, 0.9, 2.0)],
         "host_overhead": 0.0, "busy": {}, "elapsed": 2.0},
    ),
    "temporal.step-accounting": (
        {"spans": _stage_spans(), "host_overhead": 0.2, "busy": {},
         "elapsed": 1.0},
        {"spans": _stage_spans(), "host_overhead": 0.1, "busy": {},
         "elapsed": 1.0},
    ),
    "capacity.gpu-busy": (
        {"spans": [], "host_overhead": 0.0, "busy": {0: 0.5}, "elapsed": 1.0},
        {"spans": [], "host_overhead": 0.0, "busy": {0: 2.0}, "elapsed": 1.0},
    ),
    "conservation.gradient-traffic": (
        {"comm": "nccl", "measured": {"nccl": 300}, "expected": 100,
         "iterations": 3},
        {"comm": "nccl", "measured": {"nccl": 299}, "expected": 100,
         "iterations": 3},
    ),
    "conservation.epoch-accounting": (
        {"epoch_time": 10.0, "iterations": 9, "mean_iteration": 1.0,
         "fixed": 1.0},
        {"epoch_time": 10.0, "iterations": 9, "mean_iteration": 1.0,
         "fixed": 0.5},
    ),
    "capacity.memory-budget": (
        {"check_memory": True, "totals": [(0, 500)], "capacity": 1000},
        {"check_memory": True, "totals": [(0, 2000)], "capacity": 1000},
    ),
    "temporal.dag-lower-bound": (
        {"mean_iteration": 1.0, "compute_floor": 0.4, "input_floor": 0.1,
         "wire_floor": 0.3, "host_floor": 0.2, "iterations": 8,
         "now": 8.0},
        {"mean_iteration": 0.6, "compute_floor": 0.4, "input_floor": 0.1,
         "wire_floor": 0.3, "host_floor": 0.2, "iterations": 8,
         "now": 8.0},
    ),
}


@pytest.mark.parametrize("invariant_name", sorted(CASES))
def test_clean_payload_passes(invariant_name):
    clean, _ = CASES[invariant_name]
    assert fire(invariant_name, clean) == []


@pytest.mark.parametrize("invariant_name", sorted(CASES))
def test_corrupted_payload_fires(invariant_name):
    _, corrupted = CASES[invariant_name]
    assert fire(invariant_name, corrupted)


def test_every_registered_checker_has_a_corruption_case():
    registered = {c.invariant for c in all_checkers()}
    assert registered == set(CASES)


# ----------------------------------------------------------------------
# Extra corruption shapes for the multi-branch structural checkers
# ----------------------------------------------------------------------
def test_ring_permutation_rejects_wrong_membership():
    assert fire("structural.ring-permutation",
                {"order": [0, 1, 3], "participants": [0, 1, 2]})


def test_tree_rejects_double_parent_and_cycle():
    base = {"root": 0, "participants": [0, 1, 2], "depth": 1}
    assert fire("structural.tree-spanning",
                dict(base, parent=((1, 0), (1, 2), (2, 0))))
    assert fire("structural.tree-spanning",
                dict(base, parent=((1, 2), (2, 1))))
    assert fire("structural.tree-spanning",
                dict(base, parent=((1, 0), (2, 0), (0, 1))))


def test_reduce_coverage_rejects_cycle():
    assert fire("structural.reduce-coverage",
                {"num_gpus": 4, "stages": [[(1, 0), (2, 3), (3, 2)]]})


def test_memory_budget_ignored_when_not_enforced():
    assert fire("capacity.memory-budget",
                {"check_memory": False, "totals": [(0, 2000)],
                 "capacity": 1000}) == []


def test_gradient_traffic_skips_unknown_comm():
    assert fire("conservation.gradient-traffic",
                {"comm": "other", "measured": {"nccl": 1}, "expected": None,
                 "iterations": 3}) == []


# ----------------------------------------------------------------------
# Engine semantics
# ----------------------------------------------------------------------
BAD = CASES["temporal.event-monotone"][1]


def test_mode_parse():
    assert CheckMode.parse("off") is CheckMode.OFF
    assert CheckMode.parse("warn") is CheckMode.WARN
    assert CheckMode.parse("strict") is CheckMode.STRICT
    assert CheckMode.parse(CheckMode.WARN) is CheckMode.WARN
    with pytest.raises(ConfigurationError):
        CheckMode.parse("loud")


def test_off_mode_is_inert():
    engine = CheckEngine("off")
    assert not engine.enabled
    engine.check("sim.event", **BAD)
    assert engine.violation_records() == ()
    assert engine.stats_dict() == {}


def test_warn_mode_records_without_raising():
    engine = CheckEngine("warn")
    engine.check("sim.event", **BAD)
    engine.check("sim.event", when=2.0, now=1.0)
    records = engine.violation_records()
    assert len(records) == 1
    assert records[0].invariant == "temporal.event-monotone"
    assert records[0].checkpoint == "sim.event"
    assert records[0].at == BAD["now"]
    assert engine.stats_dict()["temporal.event-monotone"] == (2, 1)


def test_strict_mode_raises():
    engine = CheckEngine("strict")
    with pytest.raises(InvariantViolationError) as exc:
        engine.check("sim.event", **BAD)
    assert exc.value.invariant == "temporal.event-monotone"
    assert exc.value.checkpoint == "sim.event"
    assert engine.violation_records()  # recorded before raising


def test_violation_published_on_bus():
    bus = EventBus()
    seen = []
    bus.subscribe(InvariantViolationEvent, seen.append)
    engine = CheckEngine("warn", bus=bus)
    engine.check("sim.event", **BAD)
    assert len(seen) == 1
    assert seen[0].invariant == "temporal.event-monotone"
    assert seen[0].mode == "warn"


def test_unknown_checkpoint_is_harmless():
    engine = CheckEngine("strict")
    engine.check("no.such.point", anything=1)
    assert engine.stats_dict() == {}


def test_merge_stats_accumulates():
    target = {}
    merge_stats(target, {"a.b": (2, 1)})
    merge_stats(target, {"a.b": [3, 0], "c.d": (1, 1)})
    assert target == {"a.b": [5, 1], "c.d": [1, 1]}


def test_registry_rejects_bad_category_and_duplicates():
    with pytest.raises(ValueError):
        invariant("x.point", name="x", category="vibes", description="d")(
            lambda p: None
        )
    existing = all_checkers()[0]
    with pytest.raises(ValueError):
        invariant(existing.checkpoint, name=existing.name,
                  category=existing.category, description="dup")(
            lambda p: None
        )


def test_checkers_at_unknown_point_empty():
    assert checkers_at("nope") == ()
