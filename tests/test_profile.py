"""Tests for the profiler, summaries, timeline export and smi monitor."""

import io
import json

import pytest

from repro.dnn import build_network, compile_network, network_input_shape
from repro.gpu.kernel import KernelSpec
from repro.profile import (
    MemoryMonitor,
    Profiler,
    export_chrome_trace,
    summarize_apis,
    summarize_stages,
)
from repro.profile.summary import gpu_busy_fractions


def _kernel(name="k", layer="l", stage="fp"):
    return KernelSpec(name=name, layer=layer, stage=stage, duration=1.0,
                      flops=0.0, bytes_moved=0)


@pytest.fixture()
def profiler():
    p = Profiler()
    p.record_kernel(0, _kernel("a", stage="fp"), 0.0, 1.0)
    p.record_kernel(0, _kernel("b", stage="bp"), 1.0, 3.0)
    p.record_kernel(1, _kernel("c", stage="fp"), 0.0, 1.5)
    p.record_transfer("p2p", 1, 0, 1000, 3.0, 3.5)
    p.record_transfer("nccl", 0, -1, 2000, 3.5, 4.0)
    p.record_api("cudaStreamSynchronize", 0, 3.0, 4.0)
    p.record_api("cudaLaunchKernel", 0, 0.0, 0.1)
    p.record_span("fp", 0, 0, 0.0, 1.0)
    p.record_span("fp", 1, 0, 0.0, 1.5)
    p.record_span("bp", 0, 0, 1.0, 3.0)
    p.record_span("bp", 1, 0, 1.5, 3.0)
    p.record_span("wu", -1, 0, 3.0, 4.0)
    p.record_span("iteration", -1, 0, 0.0, 4.2)
    return p


def test_disabled_profiler_records_nothing():
    p = Profiler(enabled=False)
    p.record_kernel(0, _kernel(), 0.0, 1.0)
    p.record_api("x", 0, 0.0, 1.0)
    p.record_span("fp", 0, 0, 0.0, 1.0)
    p.record_transfer("p2p", 0, 1, 10, 0.0, 1.0)
    assert not p.kernels and not p.apis and not p.spans and not p.transfers


def test_reset_clears_everything(profiler):
    profiler.reset()
    assert not profiler.kernels and not profiler.transfers
    assert not profiler.apis and not profiler.spans


def test_kernel_time_filters(profiler):
    assert profiler.kernel_time() == pytest.approx(4.5)
    assert profiler.kernel_time(gpu=0) == pytest.approx(3.0)
    assert profiler.kernel_time(stage="fp") == pytest.approx(2.5)
    assert profiler.kernel_time(gpu=1, stage="fp") == pytest.approx(1.5)


def test_bytes_transferred(profiler):
    assert profiler.bytes_transferred() == 3000
    assert profiler.bytes_transferred("p2p") == 1000


def test_api_time(profiler):
    assert profiler.api_time("cudaStreamSynchronize") == pytest.approx(1.0)
    assert profiler.api_time() == pytest.approx(1.1)


# ----------------------------------------------------------------------
# Summaries
# ----------------------------------------------------------------------
def test_stage_breakdown_takes_straggler_max(profiler):
    stages = summarize_stages(profiler)
    assert stages.fp == pytest.approx(1.5)   # max over the two GPUs
    assert stages.bp == pytest.approx(2.0)
    assert stages.wu == pytest.approx(1.0)
    assert stages.iteration == pytest.approx(4.2)
    assert stages.fp_bp == pytest.approx(3.5)
    assert 0 < stages.wu_fraction < 1


def test_stage_breakdown_empty():
    stages = summarize_stages(Profiler())
    assert stages.iteration == 0.0 and stages.wu_fraction == 0.0


def test_api_summary_ordering(profiler):
    summary = summarize_apis(profiler)
    assert summary.totals[0][0] == "cudaStreamSynchronize"
    assert summary.percent_of("cudaStreamSynchronize") == pytest.approx(
        100 * 1.0 / 1.1
    )
    assert summary.time_of("missing") == 0.0
    assert summary.percent_of("cudaLaunchKernel") < 50


def test_gpu_busy_fractions(profiler):
    busy = gpu_busy_fractions(profiler)
    assert busy[0] == pytest.approx(3.0 / 4.2)
    assert busy[1] == pytest.approx(1.5 / 4.2)


# ----------------------------------------------------------------------
# Chrome trace
# ----------------------------------------------------------------------
def test_chrome_trace_round_trips(profiler):
    buf = io.StringIO()
    export_chrome_trace(profiler, buf)
    data = json.loads(buf.getvalue())
    assert data["displayTimeUnit"] == "ms"
    duration_events = [e for e in data["traceEvents"] if e["ph"] == "X"]
    assert len(duration_events) == len(profiler.kernels) + len(
        profiler.transfers
    ) + len(profiler.apis) + len(profiler.spans)
    for event in duration_events:
        assert event["dur"] >= 0


def test_chrome_trace_lane_metadata(profiler):
    buf = io.StringIO()
    export_chrome_trace(profiler, buf)
    meta = [e for e in json.loads(buf.getvalue())["traceEvents"] if e["ph"] == "M"]
    process_names = {e["args"]["name"] for e in meta if e["name"] == "process_name"}
    thread_names = {e["args"]["name"] for e in meta if e["name"] == "thread_name"}
    assert {"GPU kernels", "Fabric transfers", "Host (CUDA APIs)",
            "Stages"} <= process_names
    assert {"GPU 0", "GPU 1"} <= thread_names   # one lane per GPU index


def test_chrome_trace_collective_destination(profiler):
    buf = io.StringIO()
    export_chrome_trace(profiler, buf)
    events = json.loads(buf.getvalue())["traceEvents"]
    names = [e["name"] for e in events]
    assert "nccl:0->all" in names
    # Collectives get their own named lane instead of a bogus p2p one.
    lane_names = {
        e["args"]["name"] for e in events
        if e["ph"] == "M" and e["name"] == "thread_name"
    }
    assert "nccl collectives (all GPUs)" in lane_names
    collective = next(e for e in events if e["name"] == "nccl:0->all")
    p2p = next(e for e in events if e["name"].startswith("p2p:"))
    assert collective["tid"] != p2p["tid"]


# ----------------------------------------------------------------------
# Memory monitor
# ----------------------------------------------------------------------
def test_memory_monitor_shape():
    stats = compile_network(build_network("alexnet"), network_input_shape("alexnet"))
    readings = MemoryMonitor().sample(stats, 32, num_gpus=4)
    assert len(readings) == 8  # 4 pre-training + 4 training
    pre = [r for r in readings if r.phase == "pretraining"]
    train = [r for r in readings if r.phase == "training"]
    assert len({r.total_gb for r in pre}) == 1          # identical pre-training
    assert train[0].total_gb > train[1].total_gb        # GPU0 above workers
    assert len({r.total_gb for r in train[1:]}) == 1    # workers identical


def test_memory_monitor_single_gpu_has_no_server():
    stats = compile_network(build_network("lenet"), network_input_shape("lenet"))
    readings = MemoryMonitor().sample(stats, 16, num_gpus=1)
    train = [r for r in readings if r.phase == "training"]
    assert train[0].usage.server_buffers == 0
