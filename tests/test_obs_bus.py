"""Tests for the observability event bus and the profiler's use of it."""

import pytest

from repro.gpu.kernel import KernelSpec
from repro.obs import (
    ApiEvent,
    EventBus,
    KernelEvent,
    ObsEvent,
    SpanEvent,
    TransferEvent,
)
from repro.profile import Profiler


def _kernel(name="k", stage="fp"):
    return KernelSpec(name=name, layer="l", stage=stage, duration=1.0,
                      flops=0.0, bytes_moved=0)


# ----------------------------------------------------------------------
# EventBus
# ----------------------------------------------------------------------
def test_typed_subscription_receives_only_its_type():
    bus = EventBus()
    seen = []
    bus.subscribe(KernelEvent, seen.append)
    bus.publish(KernelEvent(gpu=0, name="k", layer="l", stage="fp",
                            start=0.0, end=1.0))
    bus.publish(ApiEvent(name="cudaFree", gpu=0, start=0.0, end=1.0))
    assert len(seen) == 1
    assert isinstance(seen[0], KernelEvent)


def test_wildcard_subscription_receives_everything():
    bus = EventBus()
    seen = []
    bus.subscribe(None, seen.append)
    bus.publish(KernelEvent(gpu=0, name="k", layer="l", stage="fp",
                            start=0.0, end=1.0))
    bus.publish(SpanEvent(name="fp", gpu=0, iteration=0, start=0.0, end=1.0))
    assert len(seen) == 2


def test_obsevent_base_class_is_wildcard():
    bus = EventBus()
    seen = []
    bus.subscribe(ObsEvent, seen.append)
    bus.publish(TransferEvent(kind="p2p", src=0, dst=1, nbytes=10,
                              start=0.0, end=1.0))
    assert len(seen) == 1
    assert bus.subscriber_count() == 1


def test_unsubscribe_stops_delivery():
    bus = EventBus()
    seen = []
    handler = bus.subscribe(KernelEvent, seen.append)
    bus.unsubscribe(KernelEvent, handler)
    bus.publish(KernelEvent(gpu=0, name="k", layer="l", stage="fp",
                            start=0.0, end=1.0))
    assert not seen
    bus.unsubscribe(KernelEvent, handler)  # double-unsubscribe is a no-op


def test_typed_handlers_run_before_wildcards():
    bus = EventBus()
    order = []
    bus.subscribe(None, lambda e: order.append("wild"))
    bus.subscribe(KernelEvent, lambda e: order.append("typed"))
    bus.publish(KernelEvent(gpu=0, name="k", layer="l", stage="fp",
                            start=0.0, end=1.0))
    assert order == ["typed", "wild"]


# ----------------------------------------------------------------------
# Profiler as a bus citizen
# ----------------------------------------------------------------------
def test_record_calls_publish_typed_events():
    p = Profiler()
    seen = []
    p.bus.subscribe(None, seen.append)
    p.record_kernel(0, _kernel(), 0.0, 1.0)
    p.record_transfer("p2p", 0, 1, 10, 0.0, 1.0)
    p.record_api("cudaLaunchKernel", 0, 0.0, 0.1)
    p.record_span("fp", 0, 0, 0.0, 1.0)
    assert [type(e) for e in seen] == [
        KernelEvent, TransferEvent, ApiEvent, SpanEvent,
    ]
    # List accumulation rides the same stream.
    assert len(p.kernels) == len(p.transfers) == len(p.apis) == len(p.spans) == 1


def test_disabled_profiler_publishes_nothing():
    p = Profiler(enabled=False)
    seen = []
    p.bus.subscribe(None, seen.append)
    p.record_kernel(0, _kernel(), 0.0, 1.0)
    p.publish(KernelEvent(gpu=0, name="k", layer="l", stage="fp",
                          start=0.0, end=1.0))
    assert not seen and not p.kernels


def test_external_publish_lands_in_record_lists():
    p = Profiler()
    p.bus.publish(KernelEvent(gpu=3, name="x", layer="l", stage="wu",
                              start=0.0, end=2.0))
    assert len(p.kernels) == 1
    assert p.kernels[0].gpu == 3
    assert p.kernel_time(stage="wu") == pytest.approx(2.0)


def test_shared_bus_between_profilers():
    bus = EventBus()
    a = Profiler(bus=bus)
    b = Profiler(bus=bus)
    a.record_kernel(0, _kernel(), 0.0, 1.0)
    assert len(a.kernels) == len(b.kernels) == 1


# ----------------------------------------------------------------------
# span() context manager
# ----------------------------------------------------------------------
def test_span_context_manager_with_callable_clock():
    t = {"now": 1.0}
    p = Profiler(clock=lambda: t["now"])
    with p.span("fp", gpu=2, iteration=7):
        t["now"] = 3.5
    assert len(p.spans) == 1
    span = p.spans[0]
    assert (span.name, span.gpu, span.iteration) == ("fp", 2, 7)
    assert span.start == 1.0 and span.end == 3.5


def test_span_context_manager_with_environment_clock():
    from repro.sim import Environment

    env = Environment()
    p = Profiler()
    p.bind_clock(env)

    def proc():
        with p.span("iteration", iteration=1):
            yield env.timeout(2.0)

    env.run(until=env.process(proc()))
    assert p.spans[0].end - p.spans[0].start == pytest.approx(2.0)


def test_span_records_even_on_exception():
    p = Profiler(clock=lambda: 5.0)
    with pytest.raises(RuntimeError):
        with p.span("bp"):
            raise RuntimeError("boom")
    assert p.spans and p.spans[0].name == "bp"


def test_span_without_clock_raises():
    p = Profiler()
    with pytest.raises(ValueError, match="clock"):
        with p.span("fp"):
            pass
