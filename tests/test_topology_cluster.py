"""Tests for the multi-node cluster topology and routing."""

import pytest

from repro.core.constants import CALIBRATION
from repro.core.errors import ConfigurationError
from repro.topology import Router, build_dgx1v, build_dgx1v_cluster, node_of_rank
from repro.topology.cluster import GPUS_PER_NODE, IB_LANE_BANDWIDTH
from repro.topology.links import LinkType
from repro.topology.routing import RouteKind


@pytest.fixture(scope="module")
def cluster():
    return build_dgx1v_cluster(2)


def test_node_of_rank():
    assert node_of_rank(0) == 0
    assert node_of_rank(7) == 0
    assert node_of_rank(8) == 1
    assert node_of_rank(31) == 3


def test_cluster_size(cluster):
    assert len(cluster.gpus) == 16
    assert len(cluster.cpus) == 4
    ib = [l for l in cluster.links if l.link_type is LinkType.INFINIBAND]
    assert len(ib) == 2  # one attachment per node
    assert all(l.peak_bandwidth() == 4 * IB_LANE_BANDWIDTH for l in ib)


def test_invalid_node_count():
    with pytest.raises(ConfigurationError):
        build_dgx1v_cluster(0)


def test_intra_node_structure_preserved(cluster):
    """Each node is a full DGX-1: six NVLink ports per GPU."""
    for gpu in cluster.gpus:
        assert cluster.nvlink_port_count(gpu) == 6


def test_no_nvlink_across_nodes(cluster):
    for i in range(8):
        for j in range(8, 16):
            assert cluster.nvlink_between(cluster.gpu(i), cluster.gpu(j)) is None


def test_single_node_cluster_matches_dgx1():
    single = build_dgx1v_cluster(1)
    base = build_dgx1v()
    router_s, router_b = Router(single), Router(base)
    for a, b in ((0, 1), (0, 7), (3, 4)):
        rs = router_s.gpu_to_gpu(single.gpu(a), single.gpu(b))
        rb = router_b.gpu_to_gpu(base.gpu(a), base.gpu(b))
        assert rs.kind == rb.kind


def test_cross_node_route_uses_host_and_ib(cluster):
    router = Router(cluster)
    route = router.gpu_to_gpu(cluster.gpu(0), cluster.gpu(12))
    assert route.kind is RouteKind.PCIE_HOST
    link_types = {l.link_type for leg in route.legs for l in leg.links}
    assert LinkType.INFINIBAND in link_types
    assert LinkType.PCIE in link_types


def test_cross_node_bandwidth_paced_by_ib_or_pcie(cluster):
    router = Router(cluster)
    route = router.gpu_to_gpu(cluster.gpu(0), cluster.gpu(12))
    bw = route.bottleneck_bandwidth(CALIBRATION)
    assert bw <= 16e9  # never faster than a PCIe/IB lane path


def test_cross_node_slower_than_intra_node(cluster):
    router = Router(cluster)
    nbytes = 100 * 10**6
    intra = router.gpu_to_gpu(cluster.gpu(0), cluster.gpu(1))
    inter = router.gpu_to_gpu(cluster.gpu(0), cluster.gpu(12))
    assert inter.serialized_time(nbytes, CALIBRATION) > (
        3 * intra.serialized_time(nbytes, CALIBRATION)
    )


def test_home_cpu_per_node(cluster):
    assert cluster.home_cpu(cluster.gpu(0)).socket == 0
    assert cluster.home_cpu(cluster.gpu(12)).socket == 3


def test_host_path_same_node_is_qpi(cluster):
    path = cluster.host_path(cluster.cpu(0), cluster.cpu(1))
    assert len(path) == 2  # direct QPI


def test_host_path_cross_node_via_ib_switch(cluster):
    path = cluster.host_path(cluster.cpu(0), cluster.cpu(2))
    names = [n.name for n in path]
    assert "ibswitch" in names
    assert "nic0" in names and "nic1" in names


def test_multi_node_ring_paced_by_ib(cluster):
    from repro.comm.nccl.rings import build_ring_plan

    plan = build_ring_plan(cluster, range(16))
    assert plan.channel_bandwidth == pytest.approx(
        IB_LANE_BANDWIDTH * CALIBRATION.nccl_bandwidth_efficiency
    )
    single = build_ring_plan(cluster, range(8))
    assert single.channel_bandwidth > plan.channel_bandwidth


def test_multi_node_ring_threads_nvlink_sections(cluster):
    """Each node's section of a cross-node ring rides NVLink hop-to-hop."""
    from repro.comm.nccl.rings import build_ring_plan

    plan = build_ring_plan(cluster, range(16))
    assert not plan.uses_pcie
    assert sorted(plan.order) == list(range(16))
    order = list(plan.order)
    for a, b in zip(order, order[1:]):
        if a // GPUS_PER_NODE == b // GPUS_PER_NODE:  # intra-node hop
            assert cluster.nvlink_between(cluster.gpu(a), cluster.gpu(b))


# ----------------------------------------------------------------------
# The parameterized rail fabric (ClusterSpec / build_cluster)
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def rail_cluster():
    from repro.topology import ClusterSpec, build_cluster

    return build_cluster(ClusterSpec(num_nodes=2))


def test_rail_of_rank_mapping():
    from repro.topology import rail_of_rank

    assert [rail_of_rank(r) for r in range(8)] == [0, 0, 1, 1, 2, 2, 3, 3]
    assert rail_of_rank(13) == 2  # node 1, local GPU 5
    with pytest.raises(ConfigurationError):
        rail_of_rank(0, rails_per_node=3)  # 3 does not divide 8


def test_rail_fabric_has_one_hca_per_pcie_switch(rail_cluster):
    ib = [l for l in rail_cluster.links
          if l.link_type is LinkType.INFINIBAND]
    assert len(ib) == 8  # 2 nodes x 4 rails
    assert all(l.peak_bandwidth() == IB_LANE_BANDWIDTH for l in ib)
    nic_names = {n.name for n in rail_cluster.nodes if "nic" in n.name}
    assert nic_names == {f"nic{k}r{r}" for k in range(2) for r in range(4)}


def test_rail_hca_shares_its_gpus_pcie_switch(rail_cluster):
    """A rail's HCA hangs off the PLX switch of its GPU pair (no QPI)."""
    from repro.topology import rail_of_rank

    by_node = {n.name: n for n in rail_cluster.nodes}
    neighbours = {}
    for link in rail_cluster.links:
        if link.link_type is LinkType.PCIE:
            neighbours.setdefault(link.a.name, set()).add(link.b.name)
            neighbours.setdefault(link.b.name, set()).add(link.a.name)
    for k in range(2):
        for local in range(GPUS_PER_NODE):
            rail = rail_of_rank(local)
            nic = f"nic{k}r{rail}"
            gpu = by_node[f"gpu{k * GPUS_PER_NODE + local}"]
            # the GPU's PLX switch and the rail NIC's PLX switch coincide
            gpu_plx = {s for s in neighbours[gpu.name] if s.startswith("plx")}
            nic_plx = {s for s in neighbours[nic] if s.startswith("plx")}
            assert gpu_plx == nic_plx


def test_single_node_rail_cluster_matches_dgx1v_routes():
    from repro.topology import ClusterSpec, build_cluster

    single = build_cluster(ClusterSpec(num_nodes=1))
    base = build_dgx1v()
    router_s, router_b = Router(single), Router(base)
    for a, b in ((0, 1), (0, 7), (3, 4), (0, 5)):
        rs = router_s.gpu_to_gpu(single.gpu(a), single.gpu(b))
        rb = router_b.gpu_to_gpu(base.gpu(a), base.gpu(b))
        assert rs.kind == rb.kind
        assert rs.bottleneck_bandwidth(CALIBRATION) == pytest.approx(
            rb.bottleneck_bandwidth(CALIBRATION)
        )


def test_aggregated_spec_delegates_to_compat_graph():
    from repro.topology import ClusterSpec, build_cluster

    compat = build_cluster(ClusterSpec(num_nodes=2, interconnect="aggregated"))
    legacy = build_dgx1v_cluster(2)
    assert {n.name for n in compat.nodes} == {n.name for n in legacy.nodes}
    assert len(compat.links) == len(legacy.links)


def test_fat_tree_non_power_of_two_nodes():
    """3 nodes with leaf_radix=2: two leaves per rail under one spine."""
    from repro.topology import ClusterSpec, build_cluster

    topo = build_cluster(
        ClusterSpec(num_nodes=3, interconnect="fat-tree", leaf_radix=2))
    assert len(topo.gpus) == 24
    names = {n.name for n in topo.nodes}
    for r in range(4):
        assert f"spine{r}" in names
        assert f"leaf{r}_0" in names and f"leaf{r}_1" in names
    # cross-leaf route exists and crosses IB
    router = Router(topo)
    route = router.gpu_to_gpu(topo.gpu(0), topo.gpu(16))  # node 0 -> node 2
    link_types = {l.link_type for leg in route.legs for l in leg.links}
    assert LinkType.INFINIBAND in link_types


def test_invalid_cluster_specs_rejected():
    from repro.topology import ClusterSpec

    with pytest.raises(ConfigurationError):
        ClusterSpec(num_nodes=0)
    with pytest.raises(ConfigurationError):
        ClusterSpec(num_nodes=2, interconnect="torus")
    with pytest.raises(ConfigurationError):
        ClusterSpec(num_nodes=2, rails_per_node=3)
    with pytest.raises(ConfigurationError):
        ClusterSpec(num_nodes=2, rail_bandwidth=0.0)
    with pytest.raises(ConfigurationError):
        ClusterSpec(num_nodes=2, leaf_radix=1)
