"""Tests for the multi-node cluster topology and routing."""

import pytest

from repro.core.constants import CALIBRATION
from repro.core.errors import ConfigurationError
from repro.topology import Router, build_dgx1v, build_dgx1v_cluster, node_of_rank
from repro.topology.cluster import GPUS_PER_NODE, IB_LANE_BANDWIDTH
from repro.topology.links import LinkType
from repro.topology.routing import RouteKind


@pytest.fixture(scope="module")
def cluster():
    return build_dgx1v_cluster(2)


def test_node_of_rank():
    assert node_of_rank(0) == 0
    assert node_of_rank(7) == 0
    assert node_of_rank(8) == 1
    assert node_of_rank(31) == 3


def test_cluster_size(cluster):
    assert len(cluster.gpus) == 16
    assert len(cluster.cpus) == 4
    ib = [l for l in cluster.links if l.link_type is LinkType.INFINIBAND]
    assert len(ib) == 2  # one attachment per node
    assert all(l.peak_bandwidth() == 4 * IB_LANE_BANDWIDTH for l in ib)


def test_invalid_node_count():
    with pytest.raises(ConfigurationError):
        build_dgx1v_cluster(0)


def test_intra_node_structure_preserved(cluster):
    """Each node is a full DGX-1: six NVLink ports per GPU."""
    for gpu in cluster.gpus:
        assert cluster.nvlink_port_count(gpu) == 6


def test_no_nvlink_across_nodes(cluster):
    for i in range(8):
        for j in range(8, 16):
            assert cluster.nvlink_between(cluster.gpu(i), cluster.gpu(j)) is None


def test_single_node_cluster_matches_dgx1():
    single = build_dgx1v_cluster(1)
    base = build_dgx1v()
    router_s, router_b = Router(single), Router(base)
    for a, b in ((0, 1), (0, 7), (3, 4)):
        rs = router_s.gpu_to_gpu(single.gpu(a), single.gpu(b))
        rb = router_b.gpu_to_gpu(base.gpu(a), base.gpu(b))
        assert rs.kind == rb.kind


def test_cross_node_route_uses_host_and_ib(cluster):
    router = Router(cluster)
    route = router.gpu_to_gpu(cluster.gpu(0), cluster.gpu(12))
    assert route.kind is RouteKind.PCIE_HOST
    link_types = {l.link_type for leg in route.legs for l in leg.links}
    assert LinkType.INFINIBAND in link_types
    assert LinkType.PCIE in link_types


def test_cross_node_bandwidth_paced_by_ib_or_pcie(cluster):
    router = Router(cluster)
    route = router.gpu_to_gpu(cluster.gpu(0), cluster.gpu(12))
    bw = route.bottleneck_bandwidth(CALIBRATION)
    assert bw <= 16e9  # never faster than a PCIe/IB lane path


def test_cross_node_slower_than_intra_node(cluster):
    router = Router(cluster)
    nbytes = 100 * 10**6
    intra = router.gpu_to_gpu(cluster.gpu(0), cluster.gpu(1))
    inter = router.gpu_to_gpu(cluster.gpu(0), cluster.gpu(12))
    assert inter.serialized_time(nbytes, CALIBRATION) > (
        3 * intra.serialized_time(nbytes, CALIBRATION)
    )


def test_home_cpu_per_node(cluster):
    assert cluster.home_cpu(cluster.gpu(0)).socket == 0
    assert cluster.home_cpu(cluster.gpu(12)).socket == 3


def test_host_path_same_node_is_qpi(cluster):
    path = cluster.host_path(cluster.cpu(0), cluster.cpu(1))
    assert len(path) == 2  # direct QPI


def test_host_path_cross_node_via_ib_switch(cluster):
    path = cluster.host_path(cluster.cpu(0), cluster.cpu(2))
    names = [n.name for n in path]
    assert "ibswitch" in names
    assert "nic0" in names and "nic1" in names


def test_multi_node_ring_paced_by_ib(cluster):
    from repro.comm.nccl.rings import build_ring_plan

    plan = build_ring_plan(cluster, range(16))
    assert plan.channel_bandwidth == pytest.approx(
        IB_LANE_BANDWIDTH * CALIBRATION.nccl_bandwidth_efficiency
    )
    single = build_ring_plan(cluster, range(8))
    assert single.channel_bandwidth > plan.channel_bandwidth
