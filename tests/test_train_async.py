"""Tests for the asynchronous-SGD trainer."""

import pytest

from repro import CommMethodName, OutOfMemoryError, SimulationConfig, TrainingConfig
from repro.train import train, train_async

FAST = SimulationConfig(warmup_iterations=1, measure_iterations=2)


def _async(net="lenet", batch=16, gpus=4, **kwargs):
    return train_async(TrainingConfig(net, batch, gpus), sim=FAST, **kwargs)


def test_basic_invariants():
    r = _async()
    assert r.iteration_time > 0
    assert r.epoch_time > 0
    assert r.images_per_second > 0
    assert r.server_updates > 0


def test_single_gpu_has_zero_staleness():
    r = _async(gpus=1)
    assert r.staleness_mean == 0.0
    assert r.staleness_max == 0


def test_staleness_grows_with_gpu_count():
    """The delayed-gradient problem: staleness scales with workers."""
    means = [_async(gpus=n).staleness_mean for n in (2, 4, 8)]
    assert means[0] < means[1] < means[2]
    # roughly N-1 updates land between a worker's pull and push
    assert means[2] == pytest.approx(7.0, abs=1.5)


def test_async_throughput_beats_synchronous():
    """No barrier, no stragglers: raw epoch time drops below sync SGD."""
    for net in ("lenet", "inception-v3"):
        sync = train(TrainingConfig(net, 16, 8, comm_method=CommMethodName.P2P),
                     sim=FAST)
        asyn = _async(net=net, gpus=8)
        assert asyn.epoch_time < sync.epoch_time


def test_effective_time_penalizes_staleness():
    r = _async(gpus=8)
    assert r.effective_epoch_time() > r.epoch_time
    assert r.effective_epoch_time(penalty=0.0) == r.epoch_time
    assert r.effective_epoch_time(penalty=1.0) > r.effective_epoch_time(penalty=0.1)


def test_effective_time_can_lose_to_sync():
    """With a strong enough penalty, sync SGD wins back -- the reason the
    paper's frameworks default to synchronous training."""
    sync = train(TrainingConfig("inception-v3", 16, 8,
                                comm_method=CommMethodName.NCCL), sim=FAST)
    asyn = _async(net="inception-v3", gpus=8)
    assert asyn.effective_epoch_time(penalty=0.5) > sync.epoch_time


def test_oom_still_checked():
    with pytest.raises(OutOfMemoryError):
        _async(net="inception-v3", batch=256, gpus=2)


def test_determinism():
    a, b = _async(), _async()
    assert a.epoch_time == b.epoch_time
    assert a.staleness_samples == b.staleness_samples


def test_describe():
    r = _async()
    assert "async" in r.describe()
    assert "staleness" in r.describe()
