"""Tests for the routing layer."""

import itertools

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.constants import CALIBRATION
from repro.topology import Router, build_dgx1v
from repro.topology.routing import RouteKind


@pytest.fixture(scope="module")
def topo():
    return build_dgx1v()


@pytest.fixture(scope="module")
def router(topo):
    return Router(topo)


def test_local_route_is_empty(topo, router):
    route = router.gpu_to_gpu(topo.gpu(3), topo.gpu(3))
    assert route.kind is RouteKind.LOCAL
    assert route.legs == ()
    assert route.serialized_time(10**9, CALIBRATION) == 0.0


def test_direct_route_single_leg(topo, router):
    route = router.gpu_to_gpu(topo.gpu(0), topo.gpu(1))
    assert route.kind is RouteKind.DIRECT_NVLINK
    assert len(route.legs) == 1
    assert route.hop_count == 1


def test_staged_route_two_legs(topo, router):
    route = router.gpu_to_gpu(topo.gpu(0), topo.gpu(7))
    assert route.kind is RouteKind.STAGED_NVLINK
    assert len(route.legs) == 2
    # relay endpoint consistency
    assert route.legs[0].dst == route.legs[1].src


def test_staged_relay_prefers_wide_hops(topo, router):
    """The relay maximizes the narrower of its two hops."""
    route = router.gpu_to_gpu(topo.gpu(0), topo.gpu(7))
    for leg in route.legs:
        assert leg.links[0].width == 2  # 0-4-7 or 0-3-7? 0-4 (w2) + 4-7 (w2)


def test_all_pairs_routable(topo, router):
    for a, b in itertools.permutations(range(8), 2):
        route = router.gpu_to_gpu(topo.gpu(a), topo.gpu(b))
        assert route.kind in (
            RouteKind.DIRECT_NVLINK,
            RouteKind.STAGED_NVLINK,
            RouteKind.PCIE_HOST,
        )
        assert route.legs[0].src == topo.gpu(a)
        assert route.legs[-1].dst == topo.gpu(b)


def test_routing_symmetry(topo, router):
    """Route kind (and thus hop count) is symmetric on this fabric."""
    for a, b in itertools.combinations(range(8), 2):
        fwd = router.gpu_to_gpu(topo.gpu(a), topo.gpu(b))
        rev = router.gpu_to_gpu(topo.gpu(b), topo.gpu(a))
        assert fwd.kind == rev.kind
        assert fwd.hop_count == rev.hop_count


def test_pcie_host_route_on_nvlink_free_fabric():
    topo = build_dgx1v(nvlink=False)
    router = Router(topo)
    same_socket = router.gpu_to_gpu(topo.gpu(0), topo.gpu(1))
    cross_socket = router.gpu_to_gpu(topo.gpu(0), topo.gpu(7))
    assert same_socket.kind is RouteKind.PCIE_HOST
    assert cross_socket.kind is RouteKind.PCIE_HOST
    # crossing sockets adds the QPI hop
    assert cross_socket.hop_count == same_socket.hop_count + 1


def test_host_route_slower_than_nvlink(topo, router):
    nvlink = router.gpu_to_gpu(topo.gpu(0), topo.gpu(1))
    host = Router(build_dgx1v(nvlink=False)).gpu_to_gpu(topo.gpu(0), topo.gpu(1))
    nbytes = 100 * 10**6
    assert host.serialized_time(nbytes, CALIBRATION) > nvlink.serialized_time(
        nbytes, CALIBRATION
    )


def test_cpu_to_gpu_route(topo, router):
    route = router.cpu_to_gpu(topo.cpu(0), topo.gpu(2))
    assert route.kind is RouteKind.PCIE_LOCAL
    assert len(route.legs) == 1


def test_cpu_to_remote_gpu_crosses_qpi(topo, router):
    local = router.cpu_to_gpu(topo.cpu(0), topo.gpu(0))
    remote = router.cpu_to_gpu(topo.cpu(0), topo.gpu(5))
    assert remote.hop_count == local.hop_count + 1


@given(
    a=st.integers(min_value=0, max_value=7),
    b=st.integers(min_value=0, max_value=7),
    nbytes=st.integers(min_value=1, max_value=10**9),
)
def test_serialized_time_positive_and_monotone_property(a, b, nbytes):
    topo = build_dgx1v()
    router = Router(topo)
    route = router.gpu_to_gpu(topo.gpu(a), topo.gpu(b))
    if a == b:
        assert route.serialized_time(nbytes, CALIBRATION) == 0.0
        return
    t1 = route.serialized_time(nbytes, CALIBRATION)
    t2 = route.serialized_time(nbytes * 2, CALIBRATION)
    assert 0 < t1 < t2


def test_bottleneck_bandwidth_reflects_narrowest_leg(topo, router):
    route = router.gpu_to_gpu(topo.gpu(0), topo.gpu(3))  # dual link
    single = router.gpu_to_gpu(topo.gpu(0), topo.gpu(1))  # single link
    assert route.bottleneck_bandwidth(CALIBRATION) == pytest.approx(
        2 * single.bottleneck_bandwidth(CALIBRATION)
    )
