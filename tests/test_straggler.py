"""Tests for straggler injection (per-GPU speed factors).

The knob accepts both forms: a plain positive float (the original scalar
multiplier) and a :class:`repro.faults.SlowdownProfile` (a time-varying
piecewise-constant multiplier), backward-compatibly.
"""

import pytest

from repro import CommMethodName, SimulationConfig, TrainingConfig
from repro.faults import SlowdownProfile
from repro.gpu import GpuDevice
from repro.sim import Environment
from repro.topology.nodes import GpuNode
from repro.train import AsyncTrainer, Trainer

FAST = SimulationConfig(warmup_iterations=1, measure_iterations=2)
CONFIG = TrainingConfig("googlenet", 16, 4, comm_method=CommMethodName.NCCL)


def test_speed_factor_validation():
    env = Environment()
    with pytest.raises(ValueError):
        GpuDevice(env, GpuNode.named(0), speed_factor=0.0)
    with pytest.raises(ValueError):
        GpuDevice(env, GpuNode.named(0), speed_factor=-1.0)


def test_speed_factor_scales_kernel_time():
    from repro.gpu.kernel import KernelSpec

    env = Environment()
    slow = GpuDevice(env, GpuNode.named(0), speed_factor=3.0)
    kernel = KernelSpec("k", "l", "fp", duration=1.0, flops=0, bytes_moved=0)
    env.process(slow.run_kernel(kernel))
    env.run()
    assert env.now == pytest.approx(3.0)


def test_sync_training_paced_by_straggler():
    base = Trainer(CONFIG, sim=FAST).run()
    slow = Trainer(CONFIG, sim=FAST, gpu_speed_factors={2: 2.0}).run()
    slowdown = slow.epoch_time / base.epoch_time
    # the barrier transmits most of the 2x slowdown to the whole job
    assert 1.4 < slowdown <= 2.1


def test_straggler_position_immaterial_for_sync():
    """Synchronous SGD waits for the slowest GPU wherever it sits."""
    a = Trainer(CONFIG, sim=FAST, gpu_speed_factors={1: 2.0}).run()
    b = Trainer(CONFIG, sim=FAST, gpu_speed_factors={3: 2.0}).run()
    assert a.epoch_time == pytest.approx(b.epoch_time, rel=0.05)


def test_async_tolerates_straggler():
    base = AsyncTrainer(CONFIG, sim=FAST).run()
    slow = AsyncTrainer(CONFIG, sim=FAST, gpu_speed_factors={2: 2.0}).run()
    slowdown = slow.epoch_time / base.epoch_time
    assert slowdown < 1.35  # other workers keep going


def test_async_suffers_less_than_sync():
    sync_base = Trainer(CONFIG, sim=FAST).run()
    sync_slow = Trainer(CONFIG, sim=FAST, gpu_speed_factors={2: 2.0}).run()
    async_base = AsyncTrainer(CONFIG, sim=FAST).run()
    async_slow = AsyncTrainer(CONFIG, sim=FAST, gpu_speed_factors={2: 2.0}).run()
    assert (async_slow.epoch_time / async_base.epoch_time) < (
        sync_slow.epoch_time / sync_base.epoch_time
    )


def test_faster_gpu_does_not_help_sync():
    """One GPU at 0.5x duration (2x speed) barely moves the barrier."""
    base = Trainer(CONFIG, sim=FAST).run()
    boosted = Trainer(CONFIG, sim=FAST, gpu_speed_factors={2: 0.5}).run()
    assert boosted.epoch_time == pytest.approx(base.epoch_time, rel=0.1)


# ----------------------------------------------------------------------
# Time-varying slowdown profiles (the generalized knob)
# ----------------------------------------------------------------------
def test_device_accepts_slowdown_profile():
    from repro.gpu.kernel import KernelSpec

    profile = SlowdownProfile(steps=((0.0, 1.0), (2.0, 3.0)))
    env = Environment()
    gpu = GpuDevice(env, GpuNode.named(0), speed_factor=profile)
    kernel = KernelSpec("k", "l", "fp", duration=1.0, flops=0, bytes_moved=0)

    def work():
        yield from gpu.run_kernel(kernel)     # starts at 0.0 -> 1x
        yield from gpu.run_kernel(kernel)     # starts at 1.0 -> 1x
        yield from gpu.run_kernel(kernel)     # starts at 2.0 -> 3x

    env.process(work())
    env.run()
    assert env.now == pytest.approx(5.0)


def test_constant_profile_equals_scalar_knob():
    profile = SlowdownProfile(steps=((0.0, 2.0),))
    scalar = Trainer(CONFIG, sim=FAST, gpu_speed_factors={2: 2.0}).run()
    profiled = Trainer(CONFIG, sim=FAST, gpu_speed_factors={2: profile}).run()
    assert profiled.epoch_time == scalar.epoch_time


def test_time_varying_straggler_bounded_by_extremes():
    """A GPU that degrades mid-run lands between always-fast and always-slow."""
    profile = SlowdownProfile(steps=((0.0, 1.0), (0.05, 2.0)))
    base = Trainer(CONFIG, sim=FAST).run()
    slow = Trainer(CONFIG, sim=FAST, gpu_speed_factors={2: 2.0}).run()
    varying = Trainer(CONFIG, sim=FAST, gpu_speed_factors={2: profile}).run()
    assert base.epoch_time < varying.epoch_time <= slow.epoch_time
