"""Tests for straggler injection (per-GPU speed factors)."""

import pytest

from repro import CommMethodName, SimulationConfig, TrainingConfig
from repro.gpu import GpuDevice
from repro.sim import Environment
from repro.topology.nodes import GpuNode
from repro.train import AsyncTrainer, Trainer

FAST = SimulationConfig(warmup_iterations=1, measure_iterations=2)
CONFIG = TrainingConfig("googlenet", 16, 4, comm_method=CommMethodName.NCCL)


def test_speed_factor_validation():
    env = Environment()
    with pytest.raises(ValueError):
        GpuDevice(env, GpuNode.named(0), speed_factor=0.0)
    with pytest.raises(ValueError):
        GpuDevice(env, GpuNode.named(0), speed_factor=-1.0)


def test_speed_factor_scales_kernel_time():
    from repro.gpu.kernel import KernelSpec

    env = Environment()
    slow = GpuDevice(env, GpuNode.named(0), speed_factor=3.0)
    kernel = KernelSpec("k", "l", "fp", duration=1.0, flops=0, bytes_moved=0)
    env.process(slow.run_kernel(kernel))
    env.run()
    assert env.now == pytest.approx(3.0)


def test_sync_training_paced_by_straggler():
    base = Trainer(CONFIG, sim=FAST).run()
    slow = Trainer(CONFIG, sim=FAST, gpu_speed_factors={2: 2.0}).run()
    slowdown = slow.epoch_time / base.epoch_time
    # the barrier transmits most of the 2x slowdown to the whole job
    assert 1.4 < slowdown <= 2.1


def test_straggler_position_immaterial_for_sync():
    """Synchronous SGD waits for the slowest GPU wherever it sits."""
    a = Trainer(CONFIG, sim=FAST, gpu_speed_factors={1: 2.0}).run()
    b = Trainer(CONFIG, sim=FAST, gpu_speed_factors={3: 2.0}).run()
    assert a.epoch_time == pytest.approx(b.epoch_time, rel=0.05)


def test_async_tolerates_straggler():
    base = AsyncTrainer(CONFIG, sim=FAST).run()
    slow = AsyncTrainer(CONFIG, sim=FAST, gpu_speed_factors={2: 2.0}).run()
    slowdown = slow.epoch_time / base.epoch_time
    assert slowdown < 1.35  # other workers keep going


def test_async_suffers_less_than_sync():
    sync_base = Trainer(CONFIG, sim=FAST).run()
    sync_slow = Trainer(CONFIG, sim=FAST, gpu_speed_factors={2: 2.0}).run()
    async_base = AsyncTrainer(CONFIG, sim=FAST).run()
    async_slow = AsyncTrainer(CONFIG, sim=FAST, gpu_speed_factors={2: 2.0}).run()
    assert (async_slow.epoch_time / async_base.epoch_time) < (
        sync_slow.epoch_time / sync_base.epoch_time
    )


def test_faster_gpu_does_not_help_sync():
    """One GPU at 0.5x duration (2x speed) barely moves the barrier."""
    base = Trainer(CONFIG, sim=FAST).run()
    boosted = Trainer(CONFIG, sim=FAST, gpu_speed_factors={2: 0.5}).run()
    assert boosted.epoch_time == pytest.approx(base.epoch_time, rel=0.1)
