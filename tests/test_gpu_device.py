"""Tests for the runtime GPU device."""

import pytest

from repro.gpu import GpuDevice
from repro.gpu.kernel import KernelSpec
from repro.profile import Profiler
from repro.sim import Environment
from repro.topology.nodes import GpuNode


def _kernel(name, duration, stage="fp"):
    return KernelSpec(name=name, layer="l", stage=stage, duration=duration,
                      flops=0.0, bytes_moved=0)


@pytest.fixture()
def env():
    return Environment()


@pytest.fixture()
def device(env):
    return GpuDevice(env, GpuNode.named(0), profiler=Profiler())


def test_kernel_takes_its_duration(env, device):
    env.process(device.run_kernel(_kernel("k", 1.5)))
    env.run()
    assert env.now == pytest.approx(1.5)
    assert device.busy_time == pytest.approx(1.5)


def test_kernels_serialize_on_one_gpu(env, device):
    for i in range(3):
        env.process(device.run_kernel(_kernel(f"k{i}", 1.0)))
    env.run()
    assert env.now == pytest.approx(3.0)


def test_different_gpus_run_in_parallel(env):
    d0 = GpuDevice(env, GpuNode.named(0))
    d1 = GpuDevice(env, GpuNode.named(1))
    env.process(d0.run_kernel(_kernel("a", 2.0)))
    env.process(d1.run_kernel(_kernel("b", 2.0)))
    env.run()
    assert env.now == pytest.approx(2.0)


def test_run_kernels_sequences(env, device):
    kernels = [_kernel(f"k{i}", 0.5) for i in range(4)]
    env.process(device.run_kernels(kernels))
    env.run()
    assert env.now == pytest.approx(2.0)


def test_profiler_records_kernels(env, device):
    env.process(device.run_kernel(_kernel("k", 1.0, stage="bp")))
    env.run()
    records = device.profiler.kernels
    assert len(records) == 1
    assert records[0].gpu == 0
    assert records[0].stage == "bp"
    assert records[0].duration == pytest.approx(1.0)


def test_device_without_profiler_is_fine(env):
    device = GpuDevice(env, GpuNode.named(3))
    env.process(device.run_kernel(_kernel("k", 1.0)))
    env.run()
    assert device.index == 3
