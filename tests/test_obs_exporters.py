"""Golden-file tests for the Prometheus / JSONL / CSV exporters."""

import io
import json
import pathlib

import pytest

from repro.gpu.kernel import KernelSpec
from repro.obs import (
    CollectiveChunkEvent,
    EventBus,
    JsonlRecorder,
    KernelEvent,
    LinkBusyEvent,
    LinkWaitEvent,
    MetricsRegistry,
    ProtocolChoiceEvent,
    QueueDepthEvent,
    RingStepEvent,
    event_to_dict,
    install_default_metrics,
    render_gpu_summary,
    render_prometheus,
    write_events_jsonl,
    write_profile_csv,
)
from repro.profile import Profiler

GOLDEN_DIR = pathlib.Path(__file__).parent / "golden"

#: The fixed event stream behind both golden files.
GOLDEN_EVENTS = (
    KernelEvent(gpu=0, name="conv1.fwd", layer="conv1", stage="fp",
                start=0.0, end=0.002),
    KernelEvent(gpu=1, name="conv1.fwd", layer="conv1", stage="fp",
                start=0.0, end=0.003),
    KernelEvent(gpu=0, name="sgd_update.conv1.weight", layer="conv1",
                stage="wu", start=0.005, end=0.0055),
    LinkBusyEvent(link="gpu0<->gpu1:nvlinkx2", src="gpu0", dst="gpu1",
                  link_type="nvlink", nbytes=1048576, start=0.004, end=0.0042),
    LinkWaitEvent(link="gpu0<->gpu1:nvlinkx2", src="gpu0", dst="gpu1",
                  link_type="nvlink", wait=0.0001, at=0.004),
    RingStepEvent(collective="reduce", array="conv1.weight", step=0,
                  src=0, dst=1, link_type="nvlink", nbytes=524288,
                  start=0.004, end=0.0041),
    RingStepEvent(collective="reduce", array="conv1.weight", step=1,
                  src=1, dst=2, link_type="nvlink", nbytes=524288,
                  start=0.0041, end=0.0042),
    ProtocolChoiceEvent(collective="allreduce", array="conv1.weight",
                        nbytes=1048576, algorithm="tree", protocol="ll",
                        predicted=0.0003, pinned=False, at=0.005),
    CollectiveChunkEvent(collective="allreduce", array="conv1.weight",
                         algorithm="tree", protocol="ll", chunk=0,
                         num_chunks=2, src=1, dst=0, link_type="nvlink",
                         nbytes=524288, start=0.005, end=0.00515),
    QueueDepthEvent(now=0.004, depth=12),
)


def _publish_golden_stream(bus):
    for event in GOLDEN_EVENTS:
        bus.publish(event)


def test_prometheus_output_matches_golden():
    bus = EventBus()
    registry = install_default_metrics(bus, MetricsRegistry())
    _publish_golden_stream(bus)
    rendered = render_prometheus(registry)
    golden = (GOLDEN_DIR / "metrics.prom").read_text()
    assert rendered == golden


def test_jsonl_output_matches_golden():
    buf = io.StringIO()
    write_events_jsonl(GOLDEN_EVENTS, buf)
    golden = (GOLDEN_DIR / "events.jsonl").read_text()
    assert buf.getvalue() == golden


def test_jsonl_lines_parse_back():
    buf = io.StringIO()
    count = write_events_jsonl(GOLDEN_EVENTS, buf)
    lines = buf.getvalue().splitlines()
    assert count == len(lines) == len(GOLDEN_EVENTS)
    types = [json.loads(line)["type"] for line in lines]
    assert types[0] == "KernelEvent"
    assert "RingStepEvent" in types and "QueueDepthEvent" in types


def test_jsonl_recorder_streams_and_replays():
    bus = EventBus()
    stream = io.StringIO()
    recorder = JsonlRecorder(bus, stream=stream)
    _publish_golden_stream(bus)
    assert len(recorder.events) == len(GOLDEN_EVENTS)
    # The write-through stream and the batch export agree.
    batch = io.StringIO()
    recorder.write(batch)
    assert stream.getvalue() == batch.getvalue()
    recorder.clear()
    assert not recorder.events


def test_event_to_dict_is_json_clean():
    for event in GOLDEN_EVENTS:
        payload = event_to_dict(event)
        assert payload["type"] == type(event).__name__
        json.dumps(payload)  # must not raise


def test_prometheus_escapes_label_values():
    registry = MetricsRegistry()
    registry.counter("x_total", labelnames=("name",)).labels(
        name='we"ird\\label\n'
    ).inc()
    text = render_prometheus(registry)
    assert r'name="we\"ird\\label\n"' in text


def test_prometheus_renders_untouched_labelless_metrics():
    registry = MetricsRegistry()
    registry.gauge("sim_event_queue_depth", "depth")
    text = render_prometheus(registry)
    assert "sim_event_queue_depth 0" in text


def test_histogram_exposition_shape():
    registry = MetricsRegistry()
    h = registry.histogram("lat", buckets=(0.001, 0.01))
    h.observe(0.005)
    text = render_prometheus(registry)
    assert 'lat_bucket{le="0.001"} 0' in text
    assert 'lat_bucket{le="0.01"} 1' in text
    assert 'lat_bucket{le="+Inf"} 1' in text
    assert "lat_sum 0.005" in text
    assert "lat_count 1" in text


# ----------------------------------------------------------------------
# CSV + nvprof-style report
# ----------------------------------------------------------------------
def _small_profiler():
    p = Profiler()
    k = KernelSpec(name="conv1.fwd", layer="conv1", stage="fp", duration=1.0,
                   flops=0.0, bytes_moved=0)
    p.record_kernel(0, k, 0.0, 0.002)
    p.record_kernel(1, k, 0.0, 0.003)
    p.record_transfer("h2d", -1, 0, 4096, 0.0, 0.001)
    p.record_transfer("nccl", 0, -1, 8192, 0.004, 0.005)
    p.record_api("cudaStreamSynchronize", 0, 0.003, 0.005)
    p.record_span("fp", 0, 0, 0.0, 0.003)
    return p


def test_csv_export_row_per_record():
    p = _small_profiler()
    buf = io.StringIO()
    rows = write_profile_csv(p, buf)
    lines = buf.getvalue().splitlines()
    assert rows == 6
    assert len(lines) == 7  # header + rows
    assert lines[0].startswith("record,name,gpu,kind")
    kinds = [line.split(",")[0] for line in lines[1:]]
    assert kinds == ["kernel", "kernel", "transfer", "transfer", "api", "span"]


def test_gpu_summary_report_shape():
    text = render_gpu_summary(_small_profiler())
    assert "==PROF==" in text
    assert "GPU activities:" in text
    assert "API calls:" in text
    assert "conv1.fwd" in text
    assert "[CUDA memcpy HtoD]" in text
    assert "[NCCL collective]" in text
    assert "cudaStreamSynchronize" in text
    assert "gpu0:" in text and "gpu1:" in text


def test_gpu_summary_groups_and_ranks_by_total_time():
    text = render_gpu_summary(_small_profiler())
    lines = text.splitlines()
    conv = next(l for l in lines if l.strip().endswith("conv1.fwd"))
    # Two calls grouped into one row.
    assert "     2  " in conv


def test_gpu_summary_empty_profiler():
    text = render_gpu_summary(Profiler())
    assert "(none recorded)" in text
