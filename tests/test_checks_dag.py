"""Tests for the analytic-DAG oracle (repro.checks.dag).

The DAG critical-path floor must be a *sound* lower bound: for every
strategy x communicator-variant x GPU-count point the event-driven
measurement may never beat it.  Real simulations exercise the soundness
end to end under strict enforcement; hypothesis drives the closed-form
algebra and the checker's firing condition directly.
"""

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.checks import CheckEngine
from repro.checks.dag import (
    aggregate_peak_bandwidth,
    critical_path_floor,
    device_factor_floor,
)
from repro.checks.registry import get_checker
from repro.core.config import CommMethodName, SimulationConfig, TrainingConfig
from repro.topology import build_dgx1v
from repro.train import Trainer

FAST = SimulationConfig(warmup_iterations=1, measure_iterations=2)

#: Every synchronous strategy (the ones whose trainer loop fires the
#: ``trainer.dag`` checkpoint) and the comm_method it requires.
SYNC_STRATEGIES = {
    "p2p-tree": CommMethodName.P2P,
    "nccl-collective": CommMethodName.NCCL,
    "nccl-allreduce-replicated": CommMethodName.NCCL_ALLREDUCE,
    "ps-cpu": CommMethodName.LOCAL,
    "ps-gpu": CommMethodName.P2P,
}

DAG = "temporal.dag-lower-bound"


def _strict_dag_run(config):
    """Train under strict enforcement; return the engine for inspection."""
    engine = CheckEngine("strict")
    result = Trainer(config, sim=FAST, checks=engine).run()
    assert result.violations == ()
    checked, violated = engine.stats.get(DAG, (0, 0))
    assert checked > 0, "the trainer.dag checkpoint never fired"
    assert violated == 0
    return engine


# ----------------------------------------------------------------------
# Soundness on real simulations: strategy x comm variant x GPU count
# ----------------------------------------------------------------------
@pytest.mark.parametrize("strategy,comm", sorted(SYNC_STRATEGIES.items()))
@pytest.mark.parametrize("gpus", [1, 2, 4, 8])
def test_dag_floor_bounds_every_sync_strategy(strategy, comm, gpus):
    _strict_dag_run(
        TrainingConfig("lenet", 16, gpus, comm_method=comm,
                       strategy=strategy)
    )


@pytest.mark.parametrize("algorithm", ["ring", "tree"])
@pytest.mark.parametrize("gpus", [2, 4, 8])
def test_dag_floor_bounds_nccl_ring_and_tree(algorithm, gpus):
    _strict_dag_run(
        TrainingConfig("alexnet", 16, gpus, comm_method=CommMethodName.NCCL,
                       strategy="nccl-collective",
                       nccl_algorithm=algorithm, nccl_protocol="simple")
    )


def test_dag_floor_bounds_a_faulted_run():
    from repro.faults import FaultPlan, StragglerFault

    engine = CheckEngine("strict")
    plan = FaultPlan(stragglers=(StragglerFault(gpu=1, factor=1.6, at=0.0),))
    result = Trainer(
        TrainingConfig("lenet", 16, 4, comm_method=CommMethodName.NCCL),
        sim=FAST, checks=engine, faults=plan,
    ).run()
    assert result.violations == ()
    checked, violated = engine.stats.get(DAG, (0, 0))
    assert checked > 0 and violated == 0


# ----------------------------------------------------------------------
# The closed-form algebra (hypothesis)
# ----------------------------------------------------------------------
finite = st.floats(min_value=0.0, max_value=1e3, allow_nan=False)


@settings(max_examples=50, deadline=None)
@given(compute=finite, inp=finite, wire=finite, host=finite)
def test_floor_algebra(compute, inp, wire, host):
    floor = critical_path_floor(compute, inp, wire, host)
    # The serial chain and the wire each lower-bound the iteration...
    assert floor >= inp + compute + host - 1e-9
    assert floor >= wire + host - 1e-9
    # ...and the floor is exactly the larger of the two paths plus host.
    assert floor == max(inp + compute, wire) + host


@settings(max_examples=50, deadline=None)
@given(compute=finite, inp=finite, wire=finite, host=finite,
       slack=st.floats(min_value=1e-6, max_value=1e3, allow_nan=False))
def test_checker_fires_iff_measured_beats_the_floor(
        compute, inp, wire, host, slack):
    checker = get_checker(DAG)
    floor = critical_path_floor(compute, inp, wire, host)
    payload = dict(compute_floor=compute, input_floor=inp, wire_floor=wire,
                   host_floor=host, iterations=3, now=1.0)
    ok = checker.fn({**payload, "mean_iteration": floor * (1 + 1e-6) + slack})
    assert ok is None
    # Clearly below the floor (beyond the tolerance of ``_lt``) it fires.
    below = checker.fn({**payload, "mean_iteration": floor - slack})
    if floor - slack < floor * (1 - 1e-6):
        assert below is not None and "critical-path floor" in below


# ----------------------------------------------------------------------
# Device and topology floors
# ----------------------------------------------------------------------
class _Scalar:
    def __init__(self, f):
        self.speed_factor = f


class _Profiled:
    def __init__(self, steps):
        self.speed_factor = 1.0
        self.slowdown = dataclasses.make_dataclass("S", ["steps"])(steps)


@settings(max_examples=50, deadline=None)
@given(factor=st.floats(min_value=0.1, max_value=10.0, allow_nan=False))
def test_scalar_device_floor_is_its_speed_factor(factor):
    assert device_factor_floor(_Scalar(factor)) == factor


@settings(max_examples=50, deadline=None)
@given(factors=st.lists(
    st.floats(min_value=0.1, max_value=10.0, allow_nan=False),
    min_size=1, max_size=5))
def test_profiled_device_floor_is_the_minimum_step(factors):
    steps = tuple((float(i), f) for i, f in enumerate(factors))
    assert device_factor_floor(_Profiled(steps)) == min(factors)


def test_unknown_profile_degrades_to_no_floor():
    class Opaque:
        speed_factor = 1.0
        slowdown = object()          # has neither .steps nor anything useful

    assert device_factor_floor(Opaque()) == 0.0


def test_aggregate_peak_bandwidth_is_full_duplex():
    topology = build_dgx1v()
    agg = aggregate_peak_bandwidth(topology)
    assert agg == 2.0 * sum(link.peak_bandwidth() for link in topology.links)
    assert agg > 0
