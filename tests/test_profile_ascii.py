"""Tests for the ASCII timeline renderer."""

from repro.gpu.kernel import KernelSpec
from repro.profile import Profiler, render_ascii_timeline


def _kernel(name, stage):
    return KernelSpec(name=name, layer="l", stage=stage, duration=1.0,
                      flops=0.0, bytes_moved=0)


def test_empty_profiler():
    assert "no kernels" in render_ascii_timeline(Profiler())


def test_lanes_per_gpu():
    p = Profiler()
    p.record_kernel(0, _kernel("a", "fp"), 0.0, 1.0)
    p.record_kernel(2, _kernel("b", "bp"), 1.0, 2.0)
    text = render_ascii_timeline(p, width=20)
    assert "gpu0 |" in text
    assert "gpu2 |" in text
    assert "gpu1" not in text


def test_glyphs_match_stages():
    p = Profiler()
    p.record_kernel(0, _kernel("f", "fp"), 0.0, 1.0)
    p.record_kernel(0, _kernel("b", "bp"), 1.0, 2.0)
    p.record_kernel(0, _kernel("w", "wu"), 2.0, 3.0)
    text = render_ascii_timeline(p, width=30)
    lane = next(l for l in text.splitlines() if l.startswith("gpu0"))
    body = lane.split("|")[1]
    assert "F" in body and "B" in body and "W" in body
    # thirds in order
    assert body.index("F") < body.index("B") < body.index("W")


def test_idle_cells():
    p = Profiler()
    p.record_kernel(0, _kernel("f", "fp"), 0.0, 1.0)
    p.record_kernel(0, _kernel("b", "bp"), 9.0, 10.0)
    text = render_ascii_timeline(p, width=50)
    lane = next(l for l in text.splitlines() if l.startswith("gpu0"))
    assert "." in lane.split("|")[1]


def test_transfer_lane():
    p = Profiler()
    p.record_kernel(0, _kernel("f", "fp"), 0.0, 1.0)
    p.record_transfer("nccl", 0, -1, 100, 0.2, 0.8)
    text = render_ascii_timeline(p, width=20)
    xfer = next(l for l in text.splitlines() if l.startswith("xfer"))
    assert "n" in xfer


def test_explicit_window():
    p = Profiler()
    p.record_kernel(0, _kernel("f", "fp"), 0.0, 10.0)
    text = render_ascii_timeline(p, width=10, window=(0.0, 5.0))
    header = text.splitlines()[0]
    assert "5000.000ms" in header  # window end = 5 s


def test_fixed_width():
    p = Profiler()
    p.record_kernel(0, _kernel("f", "fp"), 0.0, 1.0)
    for width in (10, 40, 120):
        lane = next(
            l for l in render_ascii_timeline(p, width=width).splitlines()
            if l.startswith("gpu0")
        )
        assert len(lane.split("|")[1]) == width
