"""Tests for the experiments CLI."""

import pathlib

import pytest

from repro.experiments.cli import EXPERIMENTS, main


def test_static_experiments_run(capsys):
    assert main(["table1", "fig2"]) == 0
    out = capsys.readouterr().out
    assert "Table I" in out
    assert "Figure 2" in out


def test_fast_dynamic_experiment(capsys):
    assert main(["table3", "--fast"]) == 0
    out = capsys.readouterr().out
    assert "cudaStreamSynchronize" in out


def test_unknown_experiment_rejected():
    with pytest.raises(SystemExit):
        main(["fig99"])


def test_output_dir_written(tmp_path, capsys):
    assert main(["table1", "-o", str(tmp_path)]) == 0
    capsys.readouterr()
    written = tmp_path / "table1.txt"
    assert written.exists()
    assert "alexnet" in written.read_text()


def test_all_expands_to_every_experiment():
    assert set(EXPERIMENTS) >= {
        "table1", "fig2", "fig3", "table2", "fig4", "table3", "table4",
        "fig5", "ablate", "async",
    }


def test_strict_invariants_flag_threads_to_runner(monkeypatch, capsys):
    from repro.experiments import cli

    captured = {}
    real_build = cli._build_runner

    def build(jobs, cache_dir, no_cache, progress, invariants="off"):
        captured["invariants"] = invariants
        return real_build(jobs, cache_dir, no_cache, progress, invariants)

    monkeypatch.setattr(cli, "_build_runner", build)
    assert main(["table1", "--strict-invariants", "--no-cache"]) == 0
    assert captured["invariants"] == "strict"
    assert main(["table1", "--invariants", "warn", "--no-cache"]) == 0
    assert captured["invariants"] == "warn"
    assert "invariants (warn)" in capsys.readouterr().err


def test_interrupted_sweep_exits_130(monkeypatch, capsys):
    from repro.core.errors import SweepInterrupted
    from repro.experiments import cli

    def interrupted(name, cache, fast):
        raise SweepInterrupted("fig3", 3, 10)

    monkeypatch.setattr(cli, "_run_experiment", interrupted)
    assert main(["fig3", "--no-cache"]) == 130
    assert "interrupted" in capsys.readouterr().err


def test_selfcheck_fast_passes(tmp_path, capsys):
    from repro.experiments import selfcheck

    # Strict selfcheck over a reduced grid: the simulator must satisfy
    # every invariant, and a cached second invocation must replay clean.
    assert main(["selfcheck", "--fast", "--cache-dir", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "overall: PASS" in out
    assert "replayed violation records from cache: 0" in out
    assert selfcheck.main(["--fast", "--cache-dir", str(tmp_path)]) == 0
    captured = capsys.readouterr()
    assert "overall: PASS" in captured.out
    assert "0 simulated" in captured.err
