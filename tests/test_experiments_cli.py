"""Tests for the experiments CLI."""

import pathlib

import pytest

from repro.experiments.cli import EXPERIMENTS, main


def test_static_experiments_run(capsys):
    assert main(["table1", "fig2"]) == 0
    out = capsys.readouterr().out
    assert "Table I" in out
    assert "Figure 2" in out


def test_fast_dynamic_experiment(capsys):
    assert main(["table3", "--fast"]) == 0
    out = capsys.readouterr().out
    assert "cudaStreamSynchronize" in out


def test_unknown_experiment_rejected():
    with pytest.raises(SystemExit):
        main(["fig99"])


def test_output_dir_written(tmp_path, capsys):
    assert main(["table1", "-o", str(tmp_path)]) == 0
    capsys.readouterr()
    written = tmp_path / "table1.txt"
    assert written.exists()
    assert "alexnet" in written.read_text()


def test_all_expands_to_every_experiment():
    assert set(EXPERIMENTS) >= {
        "table1", "fig2", "fig3", "table2", "fig4", "table3", "table4",
        "fig5", "ablate", "async",
    }
