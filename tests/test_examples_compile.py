"""Compile-time safety net over the example scripts.

Examples run full sweeps (seconds to minutes), so unit tests only verify
that each script parses, compiles, and has a ``main`` entry point; the
examples themselves are exercised manually and by the documentation.
"""

import ast
import pathlib

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"
EXAMPLE_FILES = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_exist():
    names = {p.stem for p in EXAMPLE_FILES}
    assert {"quickstart", "compare_comm_methods", "memory_planning"} <= names
    assert len(EXAMPLE_FILES) >= 10


@pytest.mark.parametrize("path", EXAMPLE_FILES, ids=lambda p: p.stem)
def test_example_compiles(path):
    source = path.read_text()
    compile(source, str(path), "exec")


@pytest.mark.parametrize("path", EXAMPLE_FILES, ids=lambda p: p.stem)
def test_example_has_main_guard(path):
    tree = ast.parse(path.read_text())
    functions = {n.name for n in ast.walk(tree) if isinstance(n, ast.FunctionDef)}
    assert "main" in functions, path
    assert 'if __name__ == "__main__":' in path.read_text()


@pytest.mark.parametrize("path", EXAMPLE_FILES, ids=lambda p: p.stem)
def test_example_has_docstring(path):
    tree = ast.parse(path.read_text())
    assert ast.get_docstring(tree), f"{path} lacks a module docstring"


@pytest.mark.parametrize("path", EXAMPLE_FILES, ids=lambda p: p.stem)
def test_example_imports_resolve(path):
    """Every repro import an example names must exist."""
    import importlib

    tree = ast.parse(path.read_text())
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module and (
            node.module.startswith("repro")
        ):
            module = importlib.import_module(node.module)
            for alias in node.names:
                assert hasattr(module, alias.name), (
                    f"{path.stem}: {node.module}.{alias.name} missing"
                )
