"""Tests for NCCL ring construction and the NCCL communicator."""

import pytest

from repro.comm import NcclCommunicator
from repro.comm.nccl.rings import build_ring_plan, find_nvlink_ring
from repro.core.constants import CALIBRATION
from repro.dnn.stats import WeightArray
from repro.gpu import GpuDevice, KernelCostModel
from repro.profile import Profiler
from repro.sim import Environment
from repro.topology import Fabric, build_dgx1v


@pytest.fixture(scope="module")
def topo():
    return build_dgx1v()


# ----------------------------------------------------------------------
# Ring construction
# ----------------------------------------------------------------------
@pytest.mark.parametrize("gpus", [range(2), range(4), range(8)])
def test_nvlink_ring_exists_for_paper_configs(topo, gpus):
    ring = find_nvlink_ring(topo, list(gpus))
    assert ring is not None
    assert sorted(ring) == list(gpus)


def test_ring_is_a_cycle(topo):
    ring = find_nvlink_ring(topo, range(8))
    for a, b in zip(ring, ring[1:] + ring[:1]):
        assert topo.nvlink_between(topo.gpu(a), topo.gpu(b)) is not None


def test_no_ring_without_nvlink():
    pcie = build_dgx1v(nvlink=False)
    assert find_nvlink_ring(pcie, range(4)) is None


def test_single_gpu_ring(topo):
    plan = build_ring_plan(topo, [0])
    assert plan.size == 1 and plan.channels == 1


def test_two_gpu_plan_has_one_channel(topo):
    plan = build_ring_plan(topo, [0, 1])
    assert plan.channels == 1
    assert not plan.uses_pcie


def test_multi_gpu_plan_has_two_channels(topo):
    for n in (4, 8):
        plan = build_ring_plan(topo, range(n))
        assert plan.channels == 2
        assert not plan.uses_pcie


def test_pcie_fallback_plan():
    pcie = build_dgx1v(nvlink=False)
    plan = build_ring_plan(pcie, range(4))
    assert plan.uses_pcie
    assert plan.channel_bandwidth < 25e9 * CALIBRATION.nccl_bandwidth_efficiency


def test_empty_gpu_set_rejected(topo):
    from repro.core.errors import RoutingError

    with pytest.raises(RoutingError):
        build_ring_plan(topo, [])


# ----------------------------------------------------------------------
# Communicator behaviour
# ----------------------------------------------------------------------
def _make_comm(num_gpus, profiler=None):
    env = Environment()
    topo = build_dgx1v()
    fabric = Fabric(env, topo, CALIBRATION)
    devices = [GpuDevice(env, topo.gpu(i), profiler=profiler) for i in range(num_gpus)]
    comm = NcclCommunicator(env, fabric, devices, KernelCostModel(),
                            CALIBRATION, profiler)
    return env, comm


ARRAY = WeightArray(key=0, name="w", numel=1_000_000, layer="l")
TINY = WeightArray(key=1, name="t", numel=1_000, layer="l")


def test_durations_scale_with_bytes():
    _, comm = _make_comm(8)
    assert comm.reduce_duration(10**8) > comm.reduce_duration(10**6)
    assert comm.broadcast_duration(10**8) > comm.broadcast_duration(10**6)


def test_duration_includes_call_overhead():
    _, comm = _make_comm(4)
    assert comm.reduce_duration(1) >= CALIBRATION.nccl_call_overhead


def test_epoch_fixed_overhead():
    _, comm = _make_comm(4)
    assert comm.epoch_fixed_overhead() == CALIBRATION.nccl_epoch_fixed_overhead


def test_per_iteration_overhead_scales_with_gpus():
    overheads = [_make_comm(n)[1].per_iteration_overhead() for n in (1, 2, 4, 8)]
    assert overheads[0] == 0.0
    assert overheads[1] < overheads[2] < overheads[3]


def test_single_gpu_collectives_run_on_engine():
    profiler = Profiler()
    env, comm = _make_comm(1, profiler)
    done = env.process(comm.sync_array(ARRAY))
    env.run(until=done)
    nccl_kernels = [k for k in profiler.kernels if k.name.startswith("nccl.")]
    assert len(nccl_kernels) == 2  # reduce + broadcast kernels
    assert {k.gpu for k in nccl_kernels} == {0}


def test_multi_gpu_sync_records_transfers():
    profiler = Profiler()
    env, comm = _make_comm(4, profiler)
    done = env.process(comm.sync_array(ARRAY))
    env.run(until=done)
    collectives = [t for t in profiler.transfers if t.kind == "nccl"]
    assert len(collectives) == 2  # reduce + broadcast


def test_collectives_serialize_on_stream():
    """Two arrays take the sum of their collective durations."""
    env, comm = _make_comm(4)
    t_expected = 2 * (
        comm.reduce_duration(ARRAY.nbytes) + comm.broadcast_duration(ARRAY.nbytes)
    )
    done = env.all_of([
        env.process(comm.sync_array(ARRAY)),
        env.process(comm.sync_array(WeightArray(2, "w2", ARRAY.numel, "l"))),
    ])
    env.run(until=done)
    # serialized collectives dominate; updates add a little
    assert env.now >= t_expected * 0.95


def test_eight_gpu_bandwidth_realistic():
    """Large-array ring bandwidth lands in the NCCL 2.x regime."""
    _, comm = _make_comm(8)
    nbytes = 256 * 2**20
    t = comm.reduce_duration(nbytes)
    bus_bw = nbytes / t
    assert 20e9 < bus_bw < 80e9


def test_update_runs_on_server_between_collectives():
    profiler = Profiler()
    env, comm = _make_comm(4, profiler)
    done = env.process(comm.sync_array(ARRAY))
    env.run(until=done)
    updates = [k for k in profiler.kernels if "_update." in k.name]
    assert len(updates) == 1 and updates[0].gpu == 0
    collectives = sorted(
        (t for t in profiler.transfers if t.kind == "nccl"), key=lambda t: t.start
    )
    assert collectives[0].end <= updates[0].start + 1e-12
    assert updates[0].end <= collectives[1].start + 1e-12
