"""Tests for recurrent layers and the LSTM zoo model."""

import pytest

from repro.core.errors import ShapeError
from repro.dnn import build_network, compile_network, network_input_shape
from repro.dnn.layers import LSTM, Embedding, SequenceLast
from repro.dnn.shapes import Shape


# ----------------------------------------------------------------------
# Embedding
# ----------------------------------------------------------------------
def test_embedding_shape():
    emb = Embedding("e", vocab_size=1000, dim=64)
    assert emb.infer_shape([Shape(32)]) == Shape(32, 64)


def test_embedding_params():
    emb = Embedding("e", vocab_size=1000, dim=64)
    arrays = emb.param_arrays([Shape(32)])
    assert [a.numel for a in arrays] == [64_000]


def test_embedding_rejects_sequence_of_vectors():
    with pytest.raises(ShapeError):
        Embedding("e", 100, 8).infer_shape([Shape(32, 16)])


def test_embedding_validation():
    with pytest.raises(ShapeError):
        Embedding("e", 0, 8)


# ----------------------------------------------------------------------
# LSTM
# ----------------------------------------------------------------------
def test_lstm_shape():
    lstm = LSTM("l", hidden_size=128)
    assert lstm.infer_shape([Shape(16, 64)]) == Shape(16, 128)


def test_lstm_params():
    lstm = LSTM("l", hidden_size=128)
    arrays = {a.name: a.numel for a in lstm.param_arrays([Shape(16, 64)])}
    assert arrays["l.weight_ih"] == 4 * 128 * 64
    assert arrays["l.weight_hh"] == 4 * 128 * 128
    assert arrays["l.bias"] == 8 * 128


def test_lstm_flops_scale_with_sequence_length():
    lstm = LSTM("l", hidden_size=128)
    short = lstm.forward_flops([Shape(16, 64)], Shape(16, 128))
    long = lstm.forward_flops([Shape(32, 64)], Shape(32, 128))
    assert long == pytest.approx(2 * short)


def test_lstm_backward_double(dummy=None):
    lstm = LSTM("l", hidden_size=64)
    x, out = Shape(8, 32), Shape(8, 64)
    assert lstm.backward_flops([x], out) == 2 * lstm.forward_flops([x], out)
    assert lstm.backward_kernel_count() == 2


def test_lstm_rejects_flat_input():
    with pytest.raises(ShapeError):
        LSTM("l", 64).infer_shape([Shape(100)])


def test_sequence_last():
    last = SequenceLast("s")
    assert last.infer_shape([Shape(16, 128)]) == Shape(128)
    assert last.forward_flops([Shape(16, 128)], Shape(128)) == 0.0
    with pytest.raises(ShapeError):
        last.infer_shape([Shape(128)])


# ----------------------------------------------------------------------
# Zoo model
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def lstm_stats():
    return compile_network(build_network("lstm"), network_input_shape("lstm"))


def test_lstm_model_parameters(lstm_stats):
    # embedding 5.12M + 2 LSTMs (2.1M each) + projection 5.13M
    assert lstm_stats.total_params == pytest.approx(14.45e6, rel=0.02)
    assert len(lstm_stats.weight_arrays) == 9


def test_lstm_model_trains_end_to_end():
    from repro import CommMethodName, SimulationConfig, TrainingConfig, train

    r = train(TrainingConfig("lstm", 32, 4, comm_method=CommMethodName.NCCL),
              sim=SimulationConfig(1, 2))
    assert r.epoch_time > 0
    assert r.images_per_second > 0


def test_lstm_is_communication_heavy_per_flop(lstm_stats):
    """Weights-to-FLOPs ratio far above the conv networks' -- the RNN
    regime the framework studies call out."""
    resnet = compile_network(build_network("resnet"), network_input_shape("resnet"))
    lstm_ratio = lstm_stats.model_bytes / lstm_stats.forward_flops_per_sample
    resnet_ratio = resnet.model_bytes / resnet.forward_flops_per_sample
    assert lstm_ratio > 5 * resnet_ratio
