"""Tests for the experiment modules (reduced sweeps for speed)."""

import pytest

from repro.core.config import SimulationConfig
from repro.experiments import RunCache
from repro.experiments import (
    ablations,
    nccl_ablation,
    fig2_topology,
    fig3_training_time,
    fig4_breakdown,
    fig5_weak_scaling,
    table1_networks,
    table2_nccl_overhead,
    table3_sync_overhead,
    table4_memory,
)

FAST_SIM = SimulationConfig(warmup_iterations=1, measure_iterations=2)


@pytest.fixture(scope="module")
def cache():
    return RunCache(sim=FAST_SIM)


# ----------------------------------------------------------------------
# Table I
# ----------------------------------------------------------------------
def test_table1_rows_and_render():
    result = table1_networks.run()
    assert len(result.rows) == 5
    text = table1_networks.render(result)
    assert "alexnet" in text and "61.1M" in text


# ----------------------------------------------------------------------
# Figure 2
# ----------------------------------------------------------------------
def test_fig2_structure_and_render():
    result = fig2_topology.run()
    assert result.max_hops == 2
    assert all(p == 6 for p in result.nvlink_ports_per_gpu)
    assert result.matrix[0][0] == "X"
    text = fig2_topology.render(result)
    assert "NV2" in text and "NV-2hop" in text


# ----------------------------------------------------------------------
# Figure 3 (reduced sweep)
# ----------------------------------------------------------------------
def test_fig3_reduced(cache):
    result = fig3_training_time.run(
        cache, networks=("lenet",), batch_sizes=(16,), gpu_counts=(1, 4)
    )
    assert len(result.cells) == 4  # 2 methods x 2 gpu counts
    one = result.epoch_time("lenet", "p2p", 16, 1)
    four = result.epoch_time("lenet", "p2p", 16, 4)
    assert four < one
    cell = result.cell("lenet", "p2p", 16, 4)
    assert cell.speedup_vs_1gpu == pytest.approx(one / four)
    assert "lenet" in fig3_training_time.render(result)
    with pytest.raises(KeyError):
        result.cell("lenet", "p2p", 16, 8)


# ----------------------------------------------------------------------
# Table II (reduced)
# ----------------------------------------------------------------------
def test_table2_reduced(cache):
    result = table2_nccl_overhead.run(cache, networks=("lenet",), batch_sizes=(16, 64))
    assert result.overhead("lenet", 16) > 10
    assert result.overhead("lenet", 64) > result.overhead("lenet", 16)
    assert "NCCL Overhead" in table2_nccl_overhead.render(result)


# ----------------------------------------------------------------------
# Figure 4 (reduced)
# ----------------------------------------------------------------------
def test_fig4_reduced(cache):
    result = fig4_breakdown.run(
        cache, networks=("lenet",), batch_sizes=(16,), gpu_counts=(1, 4)
    )
    single = result.cell("lenet", 16, 1)
    multi = result.cell("lenet", 16, 4)
    assert single.wu_epoch == 0.0              # not reported for 1 GPU
    assert multi.wu_epoch > 0.0
    assert multi.fp_bp_epoch < single.fp_bp_epoch
    text = fig4_breakdown.render(result)
    assert "FP+BP" in text


# ----------------------------------------------------------------------
# Table III (reduced)
# ----------------------------------------------------------------------
def test_table3_reduced(cache):
    result = table3_sync_overhead.run(cache, batch_sizes=(16,), gpu_counts=(1, 4))
    assert result.percent(16, 4) > result.percent(16, 1) * 0.5
    assert result.percent(16, 4) > 50  # sync dominates the API profile
    assert "cudaStreamSynchronize" in table3_sync_overhead.render(result)


# ----------------------------------------------------------------------
# Table IV
# ----------------------------------------------------------------------
def test_table4_full():
    result = table4_memory.run()
    row = result.row("alexnet", 64)
    assert row.training_gpu0_gb == pytest.approx(2.37, rel=0.08)
    assert row.gpu0_extra_percent > 0
    assert result.max_batch["inception-v3"] < 128
    assert result.max_batch["resnet"] < 128
    assert result.increase_vs_b16("inception-v3", 64) > 100
    text = table4_memory.render(result)
    assert "Max trainable" in text


# ----------------------------------------------------------------------
# Figure 5 (reduced)
# ----------------------------------------------------------------------
def test_fig5_reduced(cache):
    from repro.core.config import CommMethodName

    result = fig5_weak_scaling.run(
        cache, networks=("lenet",), batch_sizes=(16,), gpu_counts=(1, 4),
        methods=(CommMethodName.NCCL,),
    )
    cell = result.cell("lenet", "nccl", 16, 4)
    assert cell.weak_speedup >= cell.strong_speedup
    assert "weak" in fig5_weak_scaling.render(result)


# ----------------------------------------------------------------------
# Ablations (reduced)
# ----------------------------------------------------------------------
def test_ablations_reduced():
    result = ablations.run(networks=("alexnet",), batch_size=16, num_gpus=4,
                           sim=FAST_SIM)
    assert result.row("pcie-fabric/p2p", "alexnet").slowdown > 1.5
    assert result.row("no-overlap/p2p", "alexnet").slowdown >= 1.0
    assert result.row("no-tensor-cores/nccl", "alexnet").slowdown > 1.0
    assert "Ablation" in ablations.render(result)


def test_nccl_ablation_reduced(cache):
    result = nccl_ablation.run(runner=cache, networks=("alexnet",))
    # Crossover shape: LL wins the small sizes, ring+Simple the large.
    assert result.crossovers[0].protocol == "ll"
    assert (result.crossovers[-1].algorithm,
            result.crossovers[-1].protocol) == ("ring", "simple")
    sizes = [p.nbytes for p in result.crossovers]
    assert sizes == sorted(sizes) and len(sizes) >= 2
    # Per-size wins: LL beats Simple at 4 KiB, Simple wins at 256 MiB.
    small = next(r for r in result.selection if r.nbytes == 4096)
    assert small.protocol == "ll"
    assert small.predicted < small.candidate_time("ring", "simple")
    large = result.selection[-1]
    assert (large.algorithm, large.protocol) == ("ring", "simple")
    # End-to-end: compat epochs match the calibrated default exactly.
    from repro.core.config import CommMethodName, TrainingConfig
    from repro.train import train

    compat = result.epoch("alexnet", "compat", "compat")
    baseline = train(
        TrainingConfig("alexnet", 16, 4, comm_method=CommMethodName.NCCL),
        sim=FAST_SIM,
    )
    assert compat == baseline.epoch_time
    rendered = nccl_ablation.render(result)
    assert "Regime crossovers" in rendered and "auto+auto" in rendered


# ----------------------------------------------------------------------
# RunCache
# ----------------------------------------------------------------------
def test_run_cache_memoizes(cache):
    from repro.core.config import CommMethodName

    before = len(cache)
    cache.get("lenet", 16, 1, CommMethodName.P2P)
    mid = len(cache)
    cache.get("lenet", 16, 1, CommMethodName.P2P)
    assert len(cache) == mid >= before


def test_run_cache_try_get_oom():
    from repro.core.config import CommMethodName

    cache = RunCache(sim=FAST_SIM)
    assert cache.try_get("inception-v3", 512, 1, CommMethodName.P2P) is None


def test_empty_cache_is_still_used(cache):
    """Regression: an empty RunCache is falsy (len == 0) but must not be
    replaced by a fresh one inside experiment modules."""
    fresh = RunCache(sim=FAST_SIM)
    assert len(fresh) == 0
    fig3_training_time.run(fresh, networks=("lenet",), batch_sizes=(16,),
                           gpu_counts=(1,))
    assert len(fresh) > 0


def test_report_fast_mode():
    from repro.experiments import report

    fresh = RunCache(sim=FAST_SIM)
    text = report.generate(fresh, fast=True, timestamp="2026-01-01T00:00:00")
    assert "# Reproduction report" in text
    assert "Table I" in text and "Figure 5" in text
    assert "fast (batch 16, 1/4 GPUs)" in text
    assert f"simulations run: {len(fresh)}" in text
    assert len(fresh) > 0
