"""Tests for optimizer descriptors and their propagation."""

import pytest

from repro import CommMethodName, SimulationConfig, TrainingConfig, train
from repro.core.errors import ConfigurationError
from repro.dnn import build_network, compile_network, network_input_shape
from repro.gpu import MemoryModel
from repro.train import ADAM, SGD, SGD_MOMENTUM, available_optimizers, get_optimizer

FAST = SimulationConfig(warmup_iterations=1, measure_iterations=2)


def test_registry():
    assert set(available_optimizers()) == {"sgd", "sgd-momentum", "adam"}
    assert get_optimizer("adam") is ADAM
    with pytest.raises(ConfigurationError):
        get_optimizer("lamb")


def test_param_copies():
    assert SGD.param_copies == 2            # weights + gradients
    assert SGD_MOMENTUM.param_copies == 3   # + momentum
    assert ADAM.param_copies == 4           # + two moments


def test_update_cost_ordering():
    assert SGD.flops_per_param < SGD_MOMENTUM.flops_per_param < ADAM.flops_per_param
    assert SGD.memory_passes < SGD_MOMENTUM.memory_passes < ADAM.memory_passes


def test_memory_grows_with_optimizer_state():
    stats = compile_network(build_network("alexnet"),
                            network_input_shape("alexnet"))
    totals = {
        opt.name: MemoryModel(optimizer=opt).training(stats, 32).total
        for opt in (SGD, SGD_MOMENTUM, ADAM)
    }
    assert totals["sgd"] < totals["sgd-momentum"] < totals["adam"]
    # each state buffer is one parameter-sized array
    assert totals["adam"] - totals["sgd-momentum"] == stats.model_bytes


def test_default_matches_paper_calibration():
    """Table IV was calibrated with SGD+momentum; the default must stay."""
    stats = compile_network(build_network("alexnet"),
                            network_input_shape("alexnet"))
    usage = MemoryModel().training(stats, 64, is_server=True)
    assert usage.total_gb == pytest.approx(2.37, rel=0.08)


def test_training_with_each_optimizer():
    epochs = {}
    for opt in available_optimizers():
        r = train(TrainingConfig("alexnet", 16, 4,
                                 comm_method=CommMethodName.P2P, optimizer=opt),
                  sim=FAST)
        epochs[opt] = r.epoch_time
    # heavier update kernels cost a little more wall time
    assert epochs["sgd"] <= epochs["adam"]


def test_adam_oom_earlier_than_sgd():
    stats = compile_network(build_network("inception-v3"),
                            network_input_shape("inception-v3"))
    assert MemoryModel(optimizer=ADAM).max_batch_size(stats) <= (
        MemoryModel(optimizer=SGD).max_batch_size(stats)
    )


def test_unknown_optimizer_rejected_at_trainer():
    with pytest.raises(ConfigurationError):
        train(TrainingConfig("lenet", 16, 1, optimizer="rmsprop"), sim=FAST)
