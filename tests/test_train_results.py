"""Tests for TrainingResult's derived metrics."""

import pytest

from repro.core.config import CommMethodName, ScalingMode, TrainingConfig
from repro.profile.summary import ApiSummary, StageBreakdown
from repro.train.results import TrainingResult


def _result(epoch=10.0, wu=0.001, iteration=0.01, gpus=4, images=256 * 1024,
            scaling=ScalingMode.STRONG, batch=16):
    config = TrainingConfig("lenet", batch, gpus,
                            comm_method=CommMethodName.NCCL, scaling=scaling,
                            dataset_images=images)
    stages = StageBreakdown(fp=0.004, bp=0.005, wu=wu, iteration=iteration)
    return TrainingResult(
        config=config,
        iteration_time=iteration,
        iteration_times=(iteration,) * 3,
        epoch_time=epoch,
        fixed_overhead=0.2,
        stages=stages,
        apis=ApiSummary(totals=(("cudaStreamSynchronize", 1.0),)),
        gpu_busy={i: 0.8 for i in range(gpus)},
        compute_utilization=0.1,
        memory=(),
    )


def test_epoch_splits_into_two_buckets():
    r = _result()
    assert r.epoch_fp_bp_time + r.epoch_wu_time == pytest.approx(r.epoch_time)


def test_wu_time_scales_with_iterations():
    r = _result()
    assert r.epoch_wu_time == pytest.approx(r.iterations_per_epoch * 0.001)


def test_images_per_second():
    r = _result(epoch=10.0)
    assert r.images_per_second == pytest.approx(256 * 1024 / 10.0)


def test_speedup_over_strong():
    base = _result(epoch=20.0, gpus=1)
    fast = _result(epoch=5.0, gpus=4)
    assert fast.speedup_over(base) == pytest.approx(4.0)


def test_speedup_over_weak_normalizes_per_image():
    base = _result(epoch=10.0, gpus=1, scaling=ScalingMode.WEAK)
    weak = _result(epoch=10.0, gpus=4, scaling=ScalingMode.WEAK)
    # same epoch time over 4x the data = 4x speedup
    assert weak.speedup_over(base) == pytest.approx(4.0)


def test_stage_breakdown_fractions():
    r = _result(wu=0.002, iteration=0.01)
    assert r.stages.wu_fraction == pytest.approx(0.2)
    assert r.stages.fp_bp == pytest.approx(0.009)


def test_describe_contains_key_numbers():
    text = _result().describe()
    assert "epoch=10.00s" in text
    assert "img/s" in text
