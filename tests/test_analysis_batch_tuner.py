"""Tests for the batch-size tuner."""

import pytest

from repro.analysis import tune_batch_size
from repro.analysis.batch_tuner import render
from repro.core.config import CommMethodName, SimulationConfig

FAST = SimulationConfig(warmup_iterations=1, measure_iterations=2)


@pytest.fixture(scope="module")
def tuned():
    return tune_batch_size("inception-v3", num_gpus=4, sim=FAST)


def test_sweep_stops_at_oom(tuned):
    """Inception-v3 tops out at batch 64 (paper Sec. V-D)."""
    batches = [p.batch_size for p in tuned.points]
    assert batches == [16, 32, 64]
    assert tuned.oom_batch == 128


def test_throughput_improves_with_batch(tuned):
    rates = [p.images_per_second for p in tuned.points]
    assert rates == sorted(rates)
    assert tuned.best.batch_size == 64


def test_memory_grows_with_batch(tuned):
    mems = [p.gpu0_memory_gb for p in tuned.points]
    assert mems == sorted(mems)


def test_gain_over_reference(tuned):
    assert tuned.gain_over(16) > 1.2
    assert tuned.gain_over(64) == pytest.approx(1.0)


def test_render(tuned):
    text = render(tuned)
    assert "best" in text
    assert "out of memory" in text


def test_lenet_never_ooms_in_range():
    result = tune_batch_size("lenet", num_gpus=2, limit=256, sim=FAST,
                             comm_method=CommMethodName.P2P)
    assert result.oom_batch is None
    assert result.best.batch_size == 256
