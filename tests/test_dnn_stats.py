"""Tests for network compilation and cost accounting."""

import pytest

from repro.dnn import compile_network
from repro.dnn.builder import NetworkBuilder
from repro.dnn.layers.base import LayerKind
from repro.dnn.shapes import Shape
from repro.dnn.stats import DTYPE_BYTES


@pytest.fixture()
def simple_stats():
    b = NetworkBuilder("tiny")
    b.conv(8, 3, pad=1, name="c1")       # conv + relu
    b.maxpool(2, name="p1")
    b.flatten()
    b.dense(10, name="fc")
    b.softmax()
    return compile_network(b.build(), Shape(3, 8, 8))


def test_layer_order_is_topological(simple_stats):
    names = [l.name for l in simple_stats.layers]
    assert names.index("c1") < names.index("p1") < names.index("fc")


def test_total_params(simple_stats):
    conv_params = 3 * 8 * 9 + 8
    fc_params = 8 * 4 * 4 * 10 + 10
    assert simple_stats.total_params == conv_params + fc_params


def test_model_bytes(simple_stats):
    assert simple_stats.model_bytes == simple_stats.total_params * DTYPE_BYTES


def test_weight_arrays_carry_layer_names(simple_stats):
    layers = {w.layer for w in simple_stats.weight_arrays}
    assert layers == {"c1", "fc"}
    assert len(simple_stats.arrays_of_layer("c1")) == 2  # weight + bias


def test_activation_accounting_excludes_inplace(simple_stats):
    by_name = {l.name: l for l in simple_stats.layers}
    assert by_name["c1"].allocates_output
    assert not by_name["c1.relu"].allocates_output        # in-place
    assert not by_name["flatten1"].allocates_output       # view
    assert simple_stats.materialized_activation_bytes_per_sample < (
        simple_stats.activation_bytes_per_sample
    )


def test_activation_bytes_positive(simple_stats):
    assert simple_stats.activation_bytes_per_sample > 0
    assert simple_stats.largest_output_bytes >= max(
        l.output_bytes for l in simple_stats.layers
    )


def test_im2col_only_for_convs(simple_stats):
    for layer in simple_stats.layers:
        if layer.kind is LayerKind.CONV:
            assert layer.im2col_bytes > 0
        else:
            assert layer.im2col_bytes == 0


def test_im2col_formula(simple_stats):
    c1 = next(l for l in simple_stats.layers if l.name == "c1")
    # K*K*Cin * Hout*Wout * 4 bytes
    assert c1.im2col_bytes == 9 * 3 * 8 * 8 * DTYPE_BYTES


def test_conv_im2col_tuple_matches_layers(simple_stats):
    assert simple_stats.conv_im2col_bytes_per_sample == tuple(
        l.im2col_bytes for l in simple_stats.layers if l.im2col_bytes > 0
    )


def test_count_layers(simple_stats):
    assert simple_stats.count_layers(LayerKind.CONV) == 1
    assert simple_stats.count_layers(LayerKind.FC) == 1
    assert simple_stats.count_layers(LayerKind.POOL) == 1


def test_backward_kernels_split_for_weighted(simple_stats):
    by_name = {l.name: l for l in simple_stats.layers}
    assert by_name["c1"].backward_kernels == 2
    assert by_name["p1"].backward_kernels == 1
    assert by_name["flatten1"].backward_kernels == 0


def test_module_count_zero_without_modules(simple_stats):
    assert simple_stats.module_count == 0
