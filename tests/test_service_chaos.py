"""Chaos tests: the service survives SIGKILLed workers, a SIGKILLed
server, pool saturation and SIGTERM drain -- the ISSUE 10 acceptance
criteria, exercised against real subprocesses.

Every test here spawns ``repro-experiments serve`` (or a small runner
driver) as a child process and does real signal delivery, so this file is
deliberately slower than ``tests/test_service.py``; keep fast-path logic
tests there.
"""

import contextlib
import os
import pathlib
import signal
import subprocess
import sys
import textwrap
import threading
import time

from repro.service.client import ServiceClient

REPO = pathlib.Path(__file__).resolve().parent.parent
ENV = dict(os.environ, PYTHONPATH=str(REPO / "src"))

#: A grid whose points are individually slow enough (~100ms/iteration)
#: to SIGKILL a worker mid-simulation.
SLOW_POINTS = [
    {"network": "resnet", "batch_size": 32, "num_gpus": 4,
     "comm_method": "nccl"},
    {"network": "resnet", "batch_size": 64, "num_gpus": 4,
     "comm_method": "nccl"},
]
FAST_POINTS = [
    {"network": "lenet", "batch_size": batch, "num_gpus": 1,
     "comm_method": "p2p"}
    for batch in (16, 32, 64)
]


def _start_server(*extra_args, timeout=60.0):
    """Spawn ``repro-experiments serve`` and wait for its ready line."""
    proc = subprocess.Popen(
        [sys.executable, "-u", "-m", "repro.experiments.cli", "serve",
         "--port", "0", "--warmup", "0", *map(str, extra_args)],
        cwd=REPO, env=ENV, text=True,
        stdout=subprocess.PIPE, stderr=subprocess.PIPE,
    )
    line = proc.stdout.readline()
    if "listening on" not in line:
        proc.kill()
        raise AssertionError(
            f"server failed to start: {line!r}\n{proc.stderr.read()}")
    return proc, int(line.rsplit(":", 1)[1])


def _finish(proc, sig=None, timeout=30.0, read_stderr=True):
    """Deliver ``sig`` (if any), reap the server, return (rc, stderr).

    ``read_stderr=False`` is for SIGKILLed servers: their orphaned pool
    workers inherit the stderr pipe, so a blocking read would hang until
    the orphans die.  (A graceful drain terminates the workers itself.)
    """
    if sig is not None and proc.poll() is None:
        proc.send_signal(sig)
    try:
        proc.wait(timeout=timeout)
    except subprocess.TimeoutExpired:
        proc.kill()
        proc.wait(timeout=10)
        raise
    finally:
        stderr = proc.stderr.read() if read_stderr else ""
        proc.stdout.close()
        proc.stderr.close()
    return proc.returncode, stderr


def _sweep_in_thread(port, points, client, out, **kwargs):
    """Run one sweep on its own connection; stash response or exception."""
    def work():
        try:
            with ServiceClient("127.0.0.1", port, timeout=120.0) as c:
                out[client] = c.sweep(points, client=client, **kwargs)
        except Exception as exc:                        # noqa: BLE001
            out[client] = exc
    thread = threading.Thread(target=work, daemon=True)
    thread.start()
    return thread


def _wait_for(predicate, timeout=30.0, interval=0.05):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


# ----------------------------------------------------------------------
# Dedup across concurrent clients
# ----------------------------------------------------------------------
def test_concurrent_identical_sweeps_simulate_each_point_once():
    proc, port = _start_server("--no-cache", "--jobs", "2",
                               "--iterations", "10")
    try:
        out = {}
        threads = [
            _sweep_in_thread(port, SLOW_POINTS, name, out)
            for name in ("chaos-a", "chaos-b")
        ]
        for thread in threads:
            thread.join(timeout=120)
            assert not thread.is_alive()
        a, b = out["chaos-a"], out["chaos-b"]
        assert a["status"] == b["status"] == "ok", (a, b)
        executed = (a["sourcing"]["executed"] + b["sourcing"]["executed"])
        deduped = (a["sourcing"]["deduped"] + b["sourcing"]["deduped"])
        assert executed == len(SLOW_POINTS)            # zero duplicates
        assert deduped == len(SLOW_POINTS)             # coalesced in flight
        assert a["results"] == b["results"]
    finally:
        rc, _ = _finish(proc, signal.SIGTERM)
        assert rc == 0


# ----------------------------------------------------------------------
# SIGKILL of a busy worker
# ----------------------------------------------------------------------
def test_sigkilled_busy_worker_recovers_and_sweep_completes():
    proc, port = _start_server("--no-cache", "--jobs", "2",
                               "--iterations", "60")
    try:
        out = {}
        thread = _sweep_in_thread(port, SLOW_POINTS, "victim", out)

        with ServiceClient("127.0.0.1", port) as c:
            assert _wait_for(
                lambda: c.stats()["stats"]["queue_depth"] > 0)
            workers = c.stats()["stats"]["workers"]
        assert len(workers) == 2
        os.kill(workers[0], signal.SIGKILL)            # mid-simulation

        thread.join(timeout=180)
        assert not thread.is_alive()
        response = out["victim"]
        assert not isinstance(response, Exception), response
        assert response["status"] == "ok"
        # The pool was rebuilt and every point retried to completion.
        assert all(r["kind"] == "training" for r in response["results"])
        assert response["sourcing"]["executed"] == len(SLOW_POINTS)

        with ServiceClient("127.0.0.1", port) as c:
            stats = c.stats()["stats"]
            assert stats["rebuilds"] >= 1
            assert stats["breaker"] == "closed"
            new_workers = stats["workers"]
        assert workers[0] not in new_workers
    finally:
        rc, _ = _finish(proc, signal.SIGTERM)
        assert rc == 0


# ----------------------------------------------------------------------
# SIGKILL of the server mid-write: journal replay on restart
# ----------------------------------------------------------------------
def test_sigkilled_server_loses_no_committed_entries(tmp_path):
    cache = tmp_path / "cache"
    proc, port = _start_server("--cache-dir", cache, "--jobs", "1",
                               "--iterations", "2")
    with ServiceClient("127.0.0.1", port) as c:
        cold = c.sweep(FAST_POINTS, client="cold")
        workers = c.stats()["stats"]["workers"]
    assert cold["status"] == "ok"
    assert cold["sourcing"]["executed"] == len(FAST_POINTS)
    # No drain, no flush -- and reap the pool workers the kill orphans.
    _finish(proc, signal.SIGKILL, timeout=15, read_stderr=False)
    for pid in workers:
        with contextlib.suppress(OSError):
            os.kill(pid, signal.SIGKILL)

    # The journal survived the kill (no graceful close ever truncated it);
    # tear one committed point file as if the kill had raced its rename.
    wals = list(cache.glob("journal/wal-*.jsonl"))
    assert wals and wals[0].stat().st_size > 0
    entries = sorted(cache.glob("shard-*/*.json"))
    assert len(entries) == len(FAST_POINTS)
    entries[0].write_text(entries[0].read_text()[:10])

    proc, port = _start_server("--cache-dir", cache, "--jobs", "1",
                               "--iterations", "2")
    try:
        with ServiceClient("127.0.0.1", port) as c:
            warm = c.sweep(FAST_POINTS, client="warm")
            stats = c.stats()["stats"]
        # Replay restored the torn entry: nothing lost, nothing re-run.
        assert warm["status"] == "ok"
        assert warm["sourcing"]["executed"] == 0       # zero duplicate sims
        assert warm["sourcing"]["disk_hits"] == len(FAST_POINTS)
        assert warm["sourcing"]["saved_seconds"] > 0
        assert warm["results"] == cold["results"]      # byte-identical data
        assert stats["store_entries"] == len(FAST_POINTS)
        assert not list(cache.glob("journal/wal-*.jsonl"))  # consumed
    finally:
        rc, stderr = _finish(proc, signal.SIGTERM)
        assert rc == 0 and "drained: journal flushed" in stderr


# ----------------------------------------------------------------------
# Saturation: BUSY or degraded, never a hang
# ----------------------------------------------------------------------
def test_saturated_pool_sheds_but_never_hangs():
    proc, port = _start_server("--no-cache", "--jobs", "1",
                               "--iterations", "20",
                               "--queue-high", "1", "--queue-low", "0")
    try:
        out = {}
        first = _sweep_in_thread(port, SLOW_POINTS, "flood-0", out)
        # Only once the pool is demonstrably saturated does the flood
        # start, so the backpressure watermark is deterministically hit.
        with ServiceClient("127.0.0.1", port) as c:
            assert _wait_for(
                lambda: c.stats()["stats"]["queue_depth"] >= 1)
        threads = [
            _sweep_in_thread(
                port,
                [dict(p, batch_size=p["batch_size"] + i) for p in SLOW_POINTS],
                f"flood-{i}", out)
            for i in range(1, 5)
        ]
        for thread in [first, *threads]:
            thread.join(timeout=180)
            assert not thread.is_alive()               # nobody hangs
        statuses = {}
        for name, response in out.items():
            assert not isinstance(response, Exception), (name, response)
            statuses[name] = response["status"]
            assert response["status"] in ("ok", "busy"), response
            if response["status"] == "busy":
                assert response["reason"] in ("backpressure", "quota")
        assert statuses["flood-0"] == "ok"             # not total refusal
        assert "busy" in statuses.values()             # shedding happened

        # A zero-budget request during the same load answers analytically
        # (degraded: true) instead of queueing -- graceful, not binary.
        with ServiceClient("127.0.0.1", port) as c:
            degraded = c.sweep(FAST_POINTS, client="cheap", budget=0)
        if degraded["status"] == "ok":
            assert all(r["degraded"] for r in degraded["results"])
            assert degraded["sourcing"]["degraded"] == len(FAST_POINTS)
        else:
            assert degraded["status"] == "busy"        # admission said no
    finally:
        rc, _ = _finish(proc, signal.SIGTERM)
        assert rc == 0


# ----------------------------------------------------------------------
# SIGTERM drain: clean exit with an empty journal
# ----------------------------------------------------------------------
def test_sigterm_drain_exits_zero_with_empty_journal(tmp_path):
    cache = tmp_path / "cache"
    proc, port = _start_server("--cache-dir", cache, "--jobs", "2",
                               "--iterations", "2")
    with ServiceClient("127.0.0.1", port) as c:
        response = c.sweep(FAST_POINTS, client="drainer")
    assert response["status"] == "ok"
    rc, stderr = _finish(proc, signal.SIGTERM)
    assert rc == 0
    assert "drained: journal flushed, exiting" in stderr
    assert len(list(cache.glob("shard-*/*.json"))) == len(FAST_POINTS)
    assert not list(cache.glob("journal/wal-*.jsonl"))  # flushed + removed


def test_sigterm_drain_with_hung_worker_still_exits_zero():
    """Satellite: SIGTERM under ``jobs>1`` with a worker that will not
    finish inside the grace period -- the drain must kill it and still
    exit 0 rather than wait forever."""
    proc, port = _start_server("--no-cache", "--jobs", "2",
                               "--iterations", "2000",
                               "--drain-timeout", "2")
    out = {}
    thread = _sweep_in_thread(port, SLOW_POINTS, "stuck", out)
    with ServiceClient("127.0.0.1", port) as c:
        assert _wait_for(lambda: c.stats()["stats"]["queue_depth"] > 0)
    started = time.monotonic()
    rc, stderr = _finish(proc, signal.SIGTERM, timeout=30)
    assert rc == 0
    assert time.monotonic() - started < 25             # did not wait for it
    assert "drained" in stderr
    thread.join(timeout=30)
    assert not thread.is_alive()
    # The abandoned client observed a closed connection, not a hang.
    assert isinstance(out["stuck"], (Exception, dict))


# ----------------------------------------------------------------------
# Runner-level satellite: SIGTERM, jobs>1, hung worker point
# ----------------------------------------------------------------------
DRIVER = textwrap.dedent("""\
    import sys
    import time

    from repro.core.config import (
        CommMethodName, SimulationConfig, TrainingConfig,
    )
    from repro.core.errors import SweepInterrupted
    from repro.runner import SweepPoint, SweepRunner, SweepSpec

    def _hang():
        time.sleep(3600)

    good = SweepPoint.make(
        TrainingConfig("lenet", 16, 1, comm_method=CommMethodName.P2P))
    hung = SweepPoint.make(
        TrainingConfig("lenet", 32, 1, comm_method=CommMethodName.P2P),
        overrides={"topology_builder": _hang},
    )
    runner = SweepRunner(
        sim=SimulationConfig(warmup_iterations=0, measure_iterations=1),
        jobs=2,
    )
    print("running", flush=True)
    try:
        runner.run(SweepSpec.explicit("sigterm", [good, hung]))
    except SweepInterrupted as exc:
        print(f"completed={exc.completed}/{exc.total}", flush=True)
        sys.exit(130)
    sys.exit(0)
""")


def test_runner_sigterm_with_hung_pool_worker_reports_partials(tmp_path):
    driver = tmp_path / "driver.py"
    driver.write_text(DRIVER)
    proc = subprocess.Popen(
        [sys.executable, "-u", str(driver)], cwd=REPO, env=ENV, text=True,
        stdout=subprocess.PIPE, stderr=subprocess.PIPE,
    )
    try:
        assert proc.stdout.readline().strip() == "running"
        # Let the good point finish; the hung one is asleep in a worker.
        time.sleep(5.0)
        proc.send_signal(signal.SIGTERM)
        proc.wait(timeout=30)                          # no atexit hang
    except BaseException:
        proc.kill()
        raise
    stdout, stderr = proc.stdout.read(), proc.stderr.read()
    assert proc.returncode == 130
    assert "completed=1/2" in stdout
    assert "interrupted: 1/2 point(s) finished and flushed" in stderr
