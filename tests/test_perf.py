"""Tests for repro.perf: spans, harness, gate, trace, cache perf field."""

import json

import pytest

from repro.analysis.serialization import result_to_dict
from repro.core.config import CommMethodName, SimulationConfig, TrainingConfig
from repro.perf.gate import compare_bench, render_comparison
from repro.perf.harness import (
    BENCH_SCHEMA_VERSION,
    BenchValidationError,
    BenchWorkload,
    _time_workload,
    calibration_score,
    load_bench,
    machine_fingerprint,
    validate_bench,
    workloads_for_profile,
    write_bench,
)
from repro.perf.spans import PERF, PerfProfiler, render_perf_report
from repro.perf.trace import PID_SELF, export_perf_chrome_trace
from repro.runner import OomInfo, ResultStore, SweepPoint, SweepRunner, SweepSpec
from repro.runner.store import CacheEntry
from repro.train import Trainer

FAST = SimulationConfig(warmup_iterations=1, measure_iterations=2)


def _config(**kwargs):
    defaults = dict(network="lenet", batch_size=16, num_gpus=1,
                    comm_method=CommMethodName.P2P)
    defaults.update(kwargs)
    return TrainingConfig(**defaults)


# ----------------------------------------------------------------------
# Spans and counters
# ----------------------------------------------------------------------
def test_disabled_span_is_shared_noop():
    perf = PerfProfiler()
    assert perf.span("a") is perf.span("b")
    perf.count("c", 5)
    assert perf.records == [] and perf.counters == {}


def test_span_nesting_builds_slash_paths():
    perf = PerfProfiler(enabled=True)
    with perf.span("outer"):
        with perf.span("inner"):
            pass
        with perf.span("inner"):
            pass
    agg = perf.aggregate()
    assert set(agg) == {"outer", "outer/inner"}
    assert agg["outer/inner"].calls == 2
    assert agg["outer"].calls == 1
    # Self time excludes the directly enclosed children.
    assert agg["outer"].self_time <= agg["outer"].total
    assert agg["outer"].total >= agg["outer/inner"].total


def test_span_closes_and_records_under_exceptions():
    perf = PerfProfiler(enabled=True)
    with pytest.raises(ValueError):
        with perf.span("outer"):
            with perf.span("inner"):
                raise ValueError("boom")
    # Both spans recorded, stack fully unwound.
    assert sorted(r.path for r in perf.records) == ["outer", "outer/inner"]
    assert perf._stack == []
    # The profiler is still usable afterwards, at depth 0.
    with perf.span("after"):
        pass
    assert perf.records[-1].path == "after"


def test_span_abandoned_child_is_popped():
    perf = PerfProfiler(enabled=True)
    outer = perf.span("outer")
    outer.__enter__()
    inner = perf.span("inner")
    inner.__enter__()  # never exited: simulates a raise mid-__enter__ chain
    outer.__exit__(None, None, None)
    assert perf._stack == []
    assert [r.name for r in perf.records] == ["outer"]


def test_counters_accumulate_and_snapshot_sorted():
    perf = PerfProfiler(enabled=True)
    perf.count("b", 2)
    perf.count("a")
    perf.count("b", 3)
    assert perf.counters_dict() == {"a": 1, "b": 5}


def test_reset_clears_everything():
    perf = PerfProfiler(enabled=True)
    with perf.span("x"):
        perf.count("n")
    perf.reset()
    assert perf.records == [] and perf.counters == {} and perf._stack == []


def test_to_registry_publishes_gauges():
    from repro.obs.metrics import MetricsRegistry

    perf = PerfProfiler(enabled=True)
    with perf.span("stage"):
        perf.count("events", 7)
    registry = MetricsRegistry()
    perf.to_registry(registry)
    seconds = registry.gauge("perf_span_seconds", "", labelnames=("path",))
    assert seconds.labels(path="stage").value > 0
    counter = registry.gauge("perf_counter_total", "", labelnames=("name",))
    assert counter.labels(name="events").value == 7


def test_render_perf_report_lists_spans_and_counters():
    perf = PerfProfiler(enabled=True)
    with perf.span("alpha"):
        perf.count("widgets", 3)
    report = render_perf_report(perf)
    assert "alpha" in report and "widgets" in report


# ----------------------------------------------------------------------
# Byte-identity: profiling must not perturb simulated outputs
# ----------------------------------------------------------------------
def test_enabled_profiling_keeps_results_byte_identical():
    config = _config(comm_method=CommMethodName.NCCL, num_gpus=2)
    baseline = result_to_dict(Trainer(config, sim=FAST).run())
    assert not PERF.enabled
    PERF.reset()
    PERF.enable()
    try:
        profiled = result_to_dict(Trainer(config, sim=FAST).run())
    finally:
        PERF.disable()
        recorded = len(PERF.records)
        PERF.reset()
    assert json.dumps(profiled, sort_keys=True) == json.dumps(
        baseline, sort_keys=True
    )
    assert recorded > 0  # the run really was instrumented


def test_global_perf_disabled_by_default():
    assert not PERF.enabled


# ----------------------------------------------------------------------
# Chrome trace export
# ----------------------------------------------------------------------
def test_export_perf_chrome_trace(tmp_path):
    perf = PerfProfiler(enabled=True)
    with perf.span("outer"):
        with perf.span("inner"):
            perf.count("things", 2)
    path = tmp_path / "self.trace.json"
    with path.open("w") as fp:
        export_perf_chrome_trace(perf, fp)
    trace = json.loads(path.read_text())
    events = trace["traceEvents"]
    assert all(e["pid"] == PID_SELF for e in events)
    durations = [e for e in events if e.get("ph") == "X"]
    assert {e["name"] for e in durations} == {"outer", "inner"}
    # Rebased to t=0 at the earliest span.
    assert min(e["ts"] for e in durations) == 0.0
    assert trace["metadata"]["perf_counters"] == {"things": 2}
    # Process metadata names the self-time lane.
    meta = [e for e in events if e.get("ph") == "M"]
    assert any(e["args"]["name"] == "Simulator self-time" for e in meta)


# ----------------------------------------------------------------------
# Harness: timing discipline, document round-trip, validation
# ----------------------------------------------------------------------
def _tiny_document():
    perf = PerfProfiler()
    calls = []

    def fn():
        calls.append(1)
        with perf.span("work"):
            pass
        return {"items": 3.0}

    workload = BenchWorkload(name="tiny", profile="fast", fn=fn,
                             repeats=3, warmup=2)
    record = _time_workload(workload, None, perf)
    return {
        "schema": BENCH_SCHEMA_VERSION,
        "generated": "2026-01-01T00:00:00Z",
        "profile": "fast",
        "machine": machine_fingerprint(),
        "calibration": calibration_score(repeats=1),
        "workloads": {"tiny": record},
    }, calls


def test_time_workload_min_of_n_with_warmup():
    document, calls = _tiny_document()
    record = document["workloads"]["tiny"]
    assert len(calls) == 5  # 2 warmup + 3 timed
    assert len(record["samples"]) == 3
    assert record["wall_clock"] == min(record["samples"])
    assert record["meta"] == {"items": 3.0}
    assert "work" in record["spans"]
    validate_bench(document)


def test_bench_write_load_round_trip(tmp_path):
    document, _ = _tiny_document()
    path = write_bench(tmp_path / "BENCH_test.json", document)
    assert path.read_text().endswith("\n")
    loaded = load_bench(path)
    assert loaded == json.loads(json.dumps(document))


@pytest.mark.parametrize("mutate, fragment", [
    (lambda d: d.update(schema=99), "schema"),
    (lambda d: d.pop("calibration"), "calibration"),
    (lambda d: d["workloads"].clear(), "empty"),
    (lambda d: d["workloads"]["tiny"].update(wall_clock=-1), "wall_clock"),
    (lambda d: d["workloads"]["tiny"].update(wall_clock=999.0), "min-of-N"),
    (lambda d: d["workloads"]["tiny"].pop("spans"), "spans"),
    (lambda d: d["workloads"]["tiny"].update(profile="bogus"), "profile"),
])
def test_validate_bench_rejects(mutate, fragment):
    document, _ = _tiny_document()
    mutate(document)
    with pytest.raises(BenchValidationError, match=fragment):
        validate_bench(document)


def test_default_workload_registry_profiles():
    fast = {w.name for w in workloads_for_profile("fast")}
    full = {w.name for w in workloads_for_profile("full")}
    both = {w.name for w in workloads_for_profile("all")}
    assert "selfcheck-fast" in fast and "selfcheck-full" in full
    assert fast.isdisjoint(full)
    assert both == fast | full
    with pytest.raises(BenchValidationError):
        workloads_for_profile("bogus")


# ----------------------------------------------------------------------
# Regression gate
# ----------------------------------------------------------------------
def _bench_doc(score, **wall_clocks):
    return {
        "schema": BENCH_SCHEMA_VERSION,
        "profile": "fast",
        "machine": {},
        "calibration": {"score": score},
        "workloads": {
            name: {"wall_clock": wall, "profile": "fast", "repeats": 1,
                   "samples": [wall], "spans": {}, "counters": {}, "meta": {}}
            for name, wall in wall_clocks.items()
        },
    }


def test_gate_passes_identical_documents():
    doc = _bench_doc(1e6, sweep=10.0)
    comparison = compare_bench(doc, doc, tolerance=0.1)
    assert comparison.ok
    assert comparison.verdicts[0].status == "ok"
    assert "gate: PASS" in render_comparison(comparison)


def test_gate_fails_on_regression():
    baseline = _bench_doc(1e6, sweep=10.0)
    fresh = _bench_doc(1e6, sweep=14.0)
    comparison = compare_bench(fresh, baseline, tolerance=0.2)
    assert not comparison.ok
    assert comparison.regressions[0].name == "sweep"
    assert "gate: FAIL (1 regression(s))" in render_comparison(comparison)


def test_gate_normalizes_by_machine_score():
    # Fresh machine is 2x slower (half the calibration score): a 2x
    # wall-clock is exactly expected, not a regression.
    baseline = _bench_doc(2e6, sweep=10.0)
    fresh = _bench_doc(1e6, sweep=20.0)
    comparison = compare_bench(fresh, baseline, tolerance=0.1)
    assert comparison.speed_ratio == pytest.approx(2.0)
    assert comparison.ok
    # ...while a genuine slowdown on top of that still fails.
    slower = _bench_doc(1e6, sweep=30.0)
    assert not compare_bench(slower, baseline, tolerance=0.1).ok


def test_gate_reports_improvements():
    baseline = _bench_doc(1e6, sweep=10.0)
    fresh = _bench_doc(1e6, sweep=4.0)
    comparison = compare_bench(fresh, baseline, tolerance=0.2)
    assert comparison.ok
    assert comparison.verdicts[0].status == "improved"


def test_gate_skips_mismatched_workloads():
    baseline = _bench_doc(1e6, common=1.0, only_base=5.0)
    fresh = _bench_doc(1e6, common=1.0, only_fresh=2.0)
    comparison = compare_bench(fresh, baseline, tolerance=0.2)
    assert comparison.ok
    statuses = {v.name: v.status for v in comparison.verdicts}
    assert statuses == {"common": "ok", "only_base": "skipped",
                        "only_fresh": "skipped"}


def test_gate_rejects_negative_tolerance():
    doc = _bench_doc(1e6, sweep=1.0)
    with pytest.raises(ValueError):
        compare_bench(doc, doc, tolerance=-0.5)


# ----------------------------------------------------------------------
# ResultStore perf field and runner timing stats
# ----------------------------------------------------------------------
def test_store_perf_field_round_trip(tmp_path):
    store = ResultStore(tmp_path)
    oom = OomInfo(device=0, requested=10, free=5, message="nope")
    store.store("k", oom, elapsed=1.25, check_stats={"inv": (4, 1)})
    entry = store.load_entry("k")
    assert isinstance(entry, CacheEntry)
    assert entry.value == oom
    assert entry.elapsed == 1.25
    assert entry.check_stats == {"inv": (4, 1)}
    # load() still returns the bare value.
    assert store.load("k") == oom


def test_store_entry_without_perf_defaults(tmp_path):
    store = ResultStore(tmp_path)
    oom = OomInfo(device=0, requested=10, free=5, message="nope")
    store.store("k", oom)  # no perf metadata (old-writer shape)
    entry = store.load_entry("k")
    assert entry.elapsed == 0.0 and entry.check_stats is None


def test_store_malformed_perf_is_ignored(tmp_path):
    store = ResultStore(tmp_path)
    oom = OomInfo(device=0, requested=10, free=5, message="nope")
    path = store.store("k", oom, elapsed=2.0)
    data = json.loads(path.read_text())
    data["perf"] = {"elapsed": "garbage", "check_stats": [1, 2]}
    path.write_text(json.dumps(data))
    entry = store.load_entry("k")
    assert entry.value == oom
    assert entry.elapsed == 0.0 and entry.check_stats is None


def test_runner_credits_saved_seconds_from_cache(tmp_path):
    spec = SweepSpec(name="t", points=(SweepPoint(config=_config()),))
    first = SweepRunner(sim=FAST, store=ResultStore(tmp_path))
    first.run(spec)
    assert first.stats.executed == 1
    assert first.stats.sim_seconds > 0
    assert first.stats.describe_timing() is not None

    second = SweepRunner(sim=FAST, store=ResultStore(tmp_path))
    second.run(spec)
    assert second.stats.disk_hits == 1
    assert second.stats.saved_seconds > 0
    # A memo hit in the same runner credits the recorded cost too.
    second.run(spec)
    assert second.stats.memory_hits == 1
    assert second.stats.saved_seconds > first.stats.sim_seconds * 0.5


def test_runner_stats_describe_format_is_stable():
    from repro.runner.runner import RunnerStats

    stats = RunnerStats()
    assert stats.describe() == (
        "0 simulated, 0 from disk cache, 0 memoized, 0 OOM"
    )
    assert stats.describe_timing() is None
