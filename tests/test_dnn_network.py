"""Tests for the network DAG container and the builder DSL."""

import pytest

from repro.core.errors import ConfigurationError, ShapeError
from repro.dnn.builder import NetworkBuilder
from repro.dnn.layers import Activation, Add, Concat, Conv2d, Dense
from repro.dnn.network import INPUT, Network
from repro.dnn.shapes import Shape


def test_add_and_output():
    net = Network("n")
    net.add(Conv2d("c1", 8, 3, pad=1))
    net.add(Activation("a1"), "c1")
    assert net.output == "a1"
    assert net.layer_names == ("c1", "a1")
    assert len(net) == 2


def test_duplicate_layer_name_rejected():
    net = Network("n")
    net.add(Conv2d("c", 8, 3))
    with pytest.raises(ConfigurationError):
        net.add(Conv2d("c", 8, 3))


def test_unknown_input_rejected():
    net = Network("n")
    with pytest.raises(ConfigurationError):
        net.add(Activation("a"), "ghost")


def test_reserved_input_name_rejected():
    net = Network("n")
    with pytest.raises(ConfigurationError):
        net.add(Conv2d(INPUT, 8, 3))


def test_empty_input_list_rejected():
    net = Network("n")
    with pytest.raises(ConfigurationError):
        net.add(Conv2d("c", 8, 3), [])


def test_empty_network_has_no_output():
    with pytest.raises(ConfigurationError):
        _ = Network("n").output


def test_set_output():
    net = Network("n")
    net.add(Conv2d("c1", 8, 3, pad=1))
    net.add(Conv2d("c2", 8, 3, pad=1), "c1")
    net.set_output("c1")
    assert net.output == "c1"
    with pytest.raises(ConfigurationError):
        net.set_output("ghost")


def test_shape_inference_chain():
    net = Network("n")
    net.add(Conv2d("c", 16, 5))
    net.add(Dense("fc", 10), "c")
    shapes = net.infer_shapes(Shape(3, 32, 32))
    assert shapes["c"] == Shape(16, 28, 28)
    assert shapes["fc"] == Shape(10)


def test_shape_inference_multi_input():
    net = Network("n")
    net.add(Conv2d("a", 8, 1))
    net.add(Conv2d("b", 8, 1))  # also from INPUT
    net.add(Concat("cat"), ["a", "b"])
    shapes = net.infer_shapes(Shape(3, 8, 8))
    assert shapes["cat"] == Shape(16, 8, 8)


def test_shape_error_propagates_layer_name():
    net = Network("n")
    net.add(Conv2d("too_big", 8, 64))
    with pytest.raises(ShapeError):
        net.infer_shapes(Shape(3, 32, 32))


def test_modules_in_first_appearance_order():
    net = Network("n")
    net.add(Conv2d("a", 8, 1), module="m1")
    net.add(Conv2d("b", 8, 1), "a", module="m2")
    net.add(Conv2d("c", 8, 1), "b", module="m1")
    assert net.modules() == ("m1", "m2")


# ----------------------------------------------------------------------
# Builder DSL
# ----------------------------------------------------------------------
def test_builder_sequential_chain():
    b = NetworkBuilder("seq")
    b.conv(8, 3, pad=1, name="c1")
    b.maxpool(2)
    b.flatten()
    b.dense(10, name="out")
    net = b.build()
    shapes = net.infer_shapes(Shape(3, 8, 8))
    assert shapes[net.output] == Shape(10)


def test_builder_conv_with_bn_adds_three_layers():
    b = NetworkBuilder("n")
    b.conv(8, 3, bn=True, name="c")
    names = b.build().layer_names
    assert names == ("c", "c.bn", "c.relu")


def test_builder_conv_bn_drops_conv_bias():
    b = NetworkBuilder("n")
    b.conv(8, 3, bn=True, name="c")
    net = b.build()
    conv = net.node("c").layer
    assert [a.name for a in conv.param_arrays([Shape(3, 8, 8)])] == ["c.weight"]


def test_builder_branch_and_concat():
    b = NetworkBuilder("n")
    stem = b.conv(8, 3, pad=1, name="stem")
    left = b.at(stem).conv(4, 1, name="left")
    right = b.at(stem).conv(4, 1, name="right")
    b.concat([left, right], name="merged")
    shapes = b.build().infer_shapes(Shape(3, 8, 8))
    assert shapes["merged"] == Shape(8, 8, 8)


def test_builder_residual():
    b = NetworkBuilder("n")
    entry = b.conv(8, 3, pad=1, name="entry")
    main = b.conv(8, 3, pad=1, act=None, name="main")
    b.add_residual(main, entry, name="res")
    shapes = b.build().infer_shapes(Shape(3, 8, 8))
    assert shapes["res.relu"] == Shape(8, 8, 8)


def test_builder_at_validates_node():
    b = NetworkBuilder("n")
    with pytest.raises(ConfigurationError):
        b.at("missing")


def test_builder_auto_names_unique():
    b = NetworkBuilder("n")
    b.conv(4, 1)
    b.conv(4, 1)
    names = b.build().layer_names
    assert len(names) == len(set(names))
