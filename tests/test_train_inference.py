"""Tests for the inference estimator."""

import pytest

from repro.core.errors import ConfigurationError, OutOfMemoryError
from repro.dnn.builder import NetworkBuilder
from repro.dnn.shapes import Shape
from repro.gpu.spec import TESLA_P100
from repro.train import InferenceEstimator


@pytest.fixture(scope="module")
def resnet():
    return InferenceEstimator("resnet")


def test_latency_positive_and_monotone(resnet):
    p1, p8 = resnet.estimate(1), resnet.estimate(8)
    assert 0 < p1.latency < p8.latency


def test_batching_improves_throughput(resnet):
    p1, p32 = resnet.estimate(1), resnet.estimate(32)
    assert p32.throughput_per_gpu > 2 * p1.throughput_per_gpu


def test_replica_throughput_linear(resnet):
    p = resnet.estimate(16)
    assert p.throughput(8) == pytest.approx(8 * p.throughput_per_gpu)
    with pytest.raises(ConfigurationError):
        p.throughput(0)


def test_memory_check(resnet):
    with pytest.raises(OutOfMemoryError):
        resnet.estimate(4096)
    est = resnet.estimate(4096, check_memory=False)
    assert est.latency > 0


def test_sweep_stops_at_oom(resnet):
    points = resnet.sweep(batches=(1, 64, 4096))
    assert len(points) == 2


def test_max_throughput_batch(resnet):
    best = resnet.max_throughput_batch()
    assert best.batch_size >= 32
    assert best.throughput_per_gpu > resnet.estimate(1).throughput_per_gpu


def test_inference_faster_than_training_iteration():
    """FP alone beats FP+BP+WU at the same batch."""
    from repro import CommMethodName, SimulationConfig, TrainingConfig, train

    est = InferenceEstimator("resnet").estimate(16)
    r = train(TrainingConfig("resnet", 16, 1, comm_method=CommMethodName.P2P),
              sim=SimulationConfig(1, 2))
    assert est.latency < r.iteration_time / 2


def test_custom_network():
    b = NetworkBuilder("tiny")
    b.conv(8, 3, pad=1)
    b.global_avgpool()
    b.dense(10)
    est = InferenceEstimator("tiny", network=b.build(), input_shape=Shape(3, 32, 32))
    assert est.estimate(4).latency > 0
    with pytest.raises(ConfigurationError):
        InferenceEstimator("tiny", network=b.build())


def test_slower_gpu_slower_inference():
    v100 = InferenceEstimator("inception-v3").estimate(16)
    p100 = InferenceEstimator("inception-v3", spec=TESLA_P100,
                              use_tensor_cores=False).estimate(16)
    assert p100.latency > v100.latency


def test_invalid_batch(resnet):
    with pytest.raises(ConfigurationError):
        resnet.estimate(0)


def test_describe(resnet):
    assert "ms/batch" in resnet.estimate(4).describe()
