"""Tests for the runtime fabric: DMA timing, contention, pipelining."""

import pytest

from repro.core.constants import CALIBRATION
from repro.sim import Environment
from repro.topology import Fabric, Router, build_dgx1v
from repro.topology.links import LinkType


@pytest.fixture()
def setup():
    env = Environment()
    topo = build_dgx1v()
    fabric = Fabric(env, topo, CALIBRATION)
    return env, topo, fabric, Router(topo)


def test_single_dma_time_matches_model(setup):
    env, topo, fabric, router = setup
    route = router.gpu_to_gpu(topo.gpu(0), topo.gpu(1))
    nbytes = 25 * 10**6

    done = env.process(fabric.transfer(route, nbytes))
    env.run()
    expected = route.serialized_time(nbytes, CALIBRATION)
    assert env.now == pytest.approx(expected)


def test_same_direction_transfers_serialize(setup):
    env, topo, fabric, router = setup
    route = router.gpu_to_gpu(topo.gpu(0), topo.gpu(1))
    nbytes = 23 * 10**6  # ~1ms on the single link

    env.process(fabric.transfer(route, nbytes))
    env.process(fabric.transfer(route, nbytes))
    env.run()
    single = route.serialized_time(nbytes, CALIBRATION)
    assert env.now == pytest.approx(2 * single)


def test_opposite_directions_run_in_parallel(setup):
    env, topo, fabric, router = setup
    fwd = router.gpu_to_gpu(topo.gpu(0), topo.gpu(1))
    rev = router.gpu_to_gpu(topo.gpu(1), topo.gpu(0))
    nbytes = 23 * 10**6

    env.process(fabric.transfer(fwd, nbytes))
    env.process(fabric.transfer(rev, nbytes))
    env.run()
    assert env.now == pytest.approx(fwd.serialized_time(nbytes, CALIBRATION))


def test_disjoint_links_run_in_parallel(setup):
    env, topo, fabric, router = setup
    r1 = router.gpu_to_gpu(topo.gpu(0), topo.gpu(1))
    r2 = router.gpu_to_gpu(topo.gpu(2), topo.gpu(3))
    nbytes = 23 * 10**6

    env.process(fabric.transfer(r1, nbytes))
    env.process(fabric.transfer(r2, nbytes))
    env.run()
    slower = max(
        r1.serialized_time(nbytes, CALIBRATION),
        r2.serialized_time(nbytes, CALIBRATION),
    )
    assert env.now == pytest.approx(slower)


def test_bytes_accounting(setup):
    env, topo, fabric, router = setup
    route = router.gpu_to_gpu(topo.gpu(0), topo.gpu(1))
    env.process(fabric.transfer(route, 1000))
    env.run()
    link_name = route.legs[0].links[0].name
    assert fabric.bytes_moved[link_name] == 1000
    assert fabric.busy_time[link_name] > 0


def test_staged_transfer_sums_legs(setup):
    env, topo, fabric, router = setup
    route = router.gpu_to_gpu(topo.gpu(0), topo.gpu(7))
    assert len(route.legs) == 2
    nbytes = 50 * 10**6
    env.process(fabric.transfer(route, nbytes))
    env.run()
    assert env.now == pytest.approx(route.serialized_time(nbytes, CALIBRATION))


def test_pipelined_transfer_beats_store_and_forward(setup):
    env, topo, fabric, router = setup
    route = router.gpu_to_gpu(topo.gpu(0), topo.gpu(7))
    nbytes = 64 * 10**6
    done = env.process(fabric.pipelined_transfer(route, nbytes, 4 * 2**20))
    env.run()
    pipelined = env.now
    serialized = route.serialized_time(nbytes, CALIBRATION)
    assert pipelined < serialized
    # asymptotically the bottleneck leg dominates
    bottleneck = nbytes / route.bottleneck_bandwidth(CALIBRATION)
    assert pipelined < 1.3 * bottleneck + 0.001


def test_pipelined_transfer_single_leg_equals_plain(setup):
    env, topo, fabric, router = setup
    route = router.gpu_to_gpu(topo.gpu(0), topo.gpu(1))
    nbytes = 10 * 10**6
    env.process(fabric.pipelined_transfer(route, nbytes, 4 * 2**20))
    env.run()
    assert env.now == pytest.approx(route.serialized_time(nbytes, CALIBRATION))


def test_channel_lookup_rejects_non_endpoint(setup):
    env, topo, fabric, _ = setup
    link = next(l for l in topo.links if l.link_type is LinkType.NVLINK)
    with pytest.raises(ValueError):
        fabric.channel(link, topo.cpu(0))
