"""Tests for the discrete-event engine core."""

import pytest

from repro.core.errors import SimulationError
from repro.sim import Environment


def test_clock_starts_at_zero():
    assert Environment().now == 0.0


def test_clock_starts_at_initial_time():
    assert Environment(initial_time=5.0).now == 5.0


def test_timeout_advances_clock():
    env = Environment()
    env.timeout(2.5)
    env.run()
    assert env.now == 2.5


def test_zero_delay_timeout_is_processed():
    env = Environment()
    t = env.timeout(0.0)
    env.run()
    assert t.triggered
    assert env.now == 0.0


def test_negative_timeout_rejected():
    env = Environment()
    with pytest.raises(SimulationError):
        env.timeout(-1.0)


def test_events_processed_in_time_order():
    env = Environment()
    order = []
    for delay in (3.0, 1.0, 2.0):
        env.timeout(delay).callbacks.append(
            lambda ev, d=delay: order.append(d)
        )
    env.run()
    assert order == [1.0, 2.0, 3.0]


def test_ties_broken_by_insertion_order():
    env = Environment()
    order = []
    for tag in ("a", "b", "c"):
        env.timeout(1.0).callbacks.append(lambda ev, t=tag: order.append(t))
    env.run()
    assert order == ["a", "b", "c"]


def test_run_until_deadline_stops_clock_at_deadline():
    env = Environment()
    env.timeout(10.0)
    env.run(until=4.0)
    assert env.now == 4.0


def test_run_until_deadline_processes_events_at_deadline():
    env = Environment()
    hits = []
    env.timeout(4.0).callbacks.append(lambda ev: hits.append(env.now))
    env.run(until=4.0)
    assert hits == [4.0]


def test_run_until_past_deadline_rejected():
    env = Environment()
    env.run(until=5.0)
    with pytest.raises(SimulationError):
        env.run(until=1.0)


def test_run_until_event_returns_value():
    env = Environment()

    def proc(env):
        yield env.timeout(1.0)
        return "done"

    assert env.run(until=env.process(proc(env))) == "done"


def test_run_until_event_raises_on_failure():
    env = Environment()

    def proc(env):
        yield env.timeout(1.0)
        raise ValueError("boom")

    with pytest.raises(ValueError, match="boom"):
        env.run(until=env.process(proc(env)))


def test_run_until_event_queue_drained_is_error():
    env = Environment()
    never = env.event()
    with pytest.raises(SimulationError):
        env.run(until=never)


def test_step_on_empty_queue_is_error():
    with pytest.raises(SimulationError):
        Environment().step()


def test_peek_reports_next_event_time():
    env = Environment()
    assert env.peek() == float("inf")
    env.timeout(3.0)
    env.timeout(1.0)
    assert env.peek() == 1.0


def test_determinism_across_runs():
    def build_and_run():
        env = Environment()
        log = []

        def worker(env, name, delay):
            for _ in range(3):
                yield env.timeout(delay)
                log.append((round(env.now, 9), name))

        for i, d in enumerate((0.3, 0.7, 0.2)):
            env.process(worker(env, f"w{i}", d))
        env.run()
        return log

    assert build_and_run() == build_and_run()
